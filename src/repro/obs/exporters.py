"""Exporters: run artifacts a recorded campaign can be studied from.

Three files land in ``runs/<run-id>/`` next to ``manifest.json``:

``events.jsonl``
    One event dict per line, in emission order (the bus's native shape).
    Appended incrementally after every experiment so an interrupted run
    still has its telemetry up to the last checkpoint.
``metrics.json``
    The metrics registry (:meth:`MetricsRegistry.as_dict`), rewritten
    atomically at each checkpoint — same temp-then-rename discipline as
    the manifest.
``trace.json``
    Chrome trace-event format built from the full event log at the end
    of the campaign; loadable in Perfetto / ``chrome://tracing``.

Reading them back (:func:`read_events`, :func:`load_run`,
:func:`build_span_tree`) is what powers ``repro-trace`` — summarizing a
run from its artifacts alone, with no re-simulation.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable

from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import Telemetry
from repro.resilience.checkpoint import atomic_write_json
from repro.resilience.errors import CheckpointError

EVENTS_FILE = "events.jsonl"
METRICS_FILE = "metrics.json"
TRACE_FILE = "trace.json"
COUNTERS_FILE = "trace.counters.json"

#: ``pid`` stamped on every Chrome trace event: the simulation is one
#: logical process; lanes (bus ``tid``) map to Chrome ``tid``.
TRACE_PID = 1


# ----------------------------------------------------------------------
# Writing
# ----------------------------------------------------------------------
def append_events_jsonl(path: Path, events: Iterable[dict[str, Any]]) -> None:
    """Append events, one compact JSON object per line."""
    if not events:
        return
    try:
        with open(path, "a", encoding="utf-8") as handle:
            for event in events:
                handle.write(json.dumps(event, separators=(",", ":")))
                handle.write("\n")
    except OSError as exc:
        raise CheckpointError(
            f"cannot append {path.name}: {exc}", path=str(path)
        ) from exc


def write_metrics_json(path: Path, metrics: MetricsRegistry) -> None:
    """Persist the registry atomically (temp-then-rename)."""
    atomic_write_json(path, metrics.as_dict())


def chrome_trace_event(event: dict[str, Any]) -> dict[str, Any]:
    """One bus event in Chrome trace-event form (``ts`` in microseconds)."""
    name = event["name"]
    out: dict[str, Any] = {
        "name": name,
        "cat": name.split(".", 1)[0],
        "ph": event["ph"],
        "ts": event["ts"] / 1000.0,
        "pid": TRACE_PID,
        "tid": event.get("tid", 0),
    }
    if event["ph"] == "i":
        out["s"] = "t"  # instant scope: thread
    if "args" in event:
        out["args"] = event["args"]
    return out


def counter_track_events(metrics: MetricsRegistry) -> list[dict[str, Any]]:
    """The metrics registry as Chrome counter-track (``ph: "C"``) events.

    Every time series renders one counter sample per retained point at
    its recorded timestamp; gauges carry no history, so each becomes a
    single sample at t=0.  Counter tracks plot numbers — non-numeric
    values (and booleans, which Perfetto would plot as 0/1 noise) are
    dropped.  This is the same event shape the live profiler emits for
    its occupancy/miss-rate timelines (``EventBus.counter``), so both
    paths land in one trace viewer idiom.
    """
    events: list[dict[str, Any]] = []

    def numeric(values: dict[str, Any]) -> dict[str, Any]:
        return {
            key: value
            for key, value in values.items()
            if isinstance(value, (int, float)) and not isinstance(value, bool)
        }

    for name, gauge in sorted(metrics.gauges.items()):
        args = numeric({"value": gauge.value})
        if args:
            events.append({"ph": "C", "name": name, "ts": 0, "args": args})
    for name, series in sorted(metrics.series_.items()):
        for sample in series.samples:
            args = numeric({k: v for k, v in sample.items() if k != "t"})
            if args:
                events.append(
                    {"ph": "C", "name": name, "ts": sample["t"], "args": args}
                )
    return events


def write_chrome_trace(
    path: Path,
    events: Iterable[dict[str, Any]],
    metadata: dict[str, Any] | None = None,
) -> None:
    """Write a Chrome trace-event file from bus events."""
    payload = {
        "traceEvents": [chrome_trace_event(event) for event in events],
        "displayTimeUnit": "ms",
        "otherData": metadata or {},
    }
    atomic_write_json(path, payload)


# ----------------------------------------------------------------------
# Reading
# ----------------------------------------------------------------------
def read_events(path: Path) -> list[dict[str, Any]]:
    """Parse an ``events.jsonl`` file back into event dicts."""
    events: list[dict[str, Any]] = []
    try:
        with open(path, encoding="utf-8") as handle:
            for lineno, line in enumerate(handle, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    events.append(json.loads(line))
                except json.JSONDecodeError as exc:
                    raise CheckpointError(
                        f"corrupt event at {path.name}:{lineno}: {exc}",
                        path=str(path),
                    ) from None
    except OSError as exc:
        raise CheckpointError(
            f"cannot read {path.name}: {exc}", path=str(path)
        ) from exc
    return events


def read_metrics(path: Path) -> MetricsRegistry:
    """Load ``metrics.json`` back into a registry."""
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise CheckpointError(
            f"cannot read {path.name}: {exc}", path=str(path)
        ) from exc
    return MetricsRegistry.from_dict(payload)


class SpanNode:
    """One span in the reconstructed tree."""

    __slots__ = ("name", "tid", "start", "end", "attrs", "children", "instants")

    def __init__(
        self, name: str, tid: int, start: int, attrs: dict[str, Any]
    ) -> None:
        self.name = name
        self.tid = tid
        self.start = start
        self.end: int | None = None
        self.attrs = attrs
        self.children: list["SpanNode"] = []
        self.instants: list[dict[str, Any]] = []

    @property
    def duration_ns(self) -> int:
        return (self.end if self.end is not None else self.start) - self.start

    def as_dict(self) -> dict[str, Any]:
        """Structural form (used by round-trip tests)."""
        return {
            "name": self.name,
            "tid": self.tid,
            "children": [child.as_dict() for child in self.children],
        }


def build_span_tree(events: Iterable[dict[str, Any]]) -> list[SpanNode]:
    """Reconstruct the span forest from a ``B``/``E``/``i`` event stream.

    Lanes (``tid``) are independent stacks; roots of every lane are
    returned in begin order.  Unclosed spans (a crashed run) keep
    ``end=None``; stray ``E`` events are ignored, mirroring the bus's
    own tolerance.
    """
    roots: list[SpanNode] = []
    stacks: dict[int, list[SpanNode]] = {}
    for event in events:
        ph = event.get("ph")
        tid = event.get("tid", 0)
        stack = stacks.setdefault(tid, [])
        if ph == "B":
            node = SpanNode(
                event["name"], tid, event["ts"], event.get("args", {})
            )
            if stack:
                stack[-1].children.append(node)
            else:
                roots.append(node)
            stack.append(node)
        elif ph == "E":
            if stack:
                stack.pop().end = event["ts"]
        elif ph == "i":
            if stack:
                stack[-1].instants.append(event)
    return roots


def iter_spans(roots: list[SpanNode]):
    """All spans of a forest, depth first."""
    stack = list(reversed(roots))
    while stack:
        node = stack.pop()
        yield node
        stack.extend(reversed(node.children))


# ----------------------------------------------------------------------
# The campaign-facing writer
# ----------------------------------------------------------------------
class RunTelemetryWriter:
    """Flushes one campaign's telemetry into its run directory.

    ``flush()`` after every experiment drains the bus into
    ``events.jsonl`` and rewrites ``metrics.json``; ``finalize()`` closes
    dangling spans, flushes once more, and builds ``trace.json`` from
    the complete event log.  Every step is crash-tolerant: a run killed
    between flushes still holds valid artifacts for what completed.
    """

    def __init__(self, run_dir: str | Path, obs: Telemetry) -> None:
        self.run_dir = Path(run_dir)
        self.obs = obs
        self.metadata: dict[str, Any] = {}

    @property
    def events_path(self) -> Path:
        return self.run_dir / EVENTS_FILE

    @property
    def metrics_path(self) -> Path:
        return self.run_dir / METRICS_FILE

    @property
    def trace_path(self) -> Path:
        return self.run_dir / TRACE_FILE

    def flush(self) -> None:
        self.run_dir.mkdir(parents=True, exist_ok=True)
        append_events_jsonl(self.events_path, self.obs.bus.drain())
        write_metrics_json(self.metrics_path, self.obs.metrics)

    def finalize(self) -> None:
        self.obs.bus.close_all()
        self.flush()
        events = (
            read_events(self.events_path)
            if self.events_path.exists()
            else []
        )
        write_chrome_trace(self.trace_path, events, metadata=self.metadata)


def load_run(run_dir: str | Path):
    """Everything ``repro-trace`` needs from a run directory.

    Returns ``(manifest_payload | None, events, metrics | None)`` —
    each piece optional so partially recorded runs still summarize.
    """
    run_dir = Path(run_dir)
    manifest: dict[str, Any] | None = None
    manifest_path = run_dir / "manifest.json"
    if manifest_path.exists():
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise CheckpointError(
                f"corrupt manifest: {exc}", path=str(manifest_path)
            ) from exc
    events_path = run_dir / EVENTS_FILE
    events = read_events(events_path) if events_path.exists() else []
    metrics_path = run_dir / METRICS_FILE
    metrics = read_metrics(metrics_path) if metrics_path.exists() else None
    return manifest, events, metrics
