"""Text summaries of a recorded run, rendered from artifacts alone.

Everything here consumes the in-memory forms produced by
:mod:`repro.obs.exporters` (event dicts, :class:`SpanNode` forests, a
:class:`~repro.obs.metrics.MetricsRegistry`) — never a live simulator —
so ``repro-trace`` can explain a run without re-running it.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Iterable

from repro.obs.exporters import SpanNode, build_span_tree, iter_spans
from repro.obs.metrics import MetricsRegistry
from repro.util.tables import TextTable

BAR_WIDTH = 30
MISS_CLASSES = ("compulsory", "capacity", "conflict")


def _ms(ns: int) -> float:
    return ns / 1e6


def _bar(value: float, peak: float, width: int = BAR_WIDTH) -> str:
    if peak <= 0:
        return ""
    return "#" * max(1 if value > 0 else 0, round(width * value / peak))


# ----------------------------------------------------------------------
# Span summary
# ----------------------------------------------------------------------
def span_summary_table(events: Iterable[dict[str, Any]]) -> TextTable:
    """Aggregate spans by name: count, total/mean/max wall time."""
    totals: dict[str, list[float]] = defaultdict(list)
    for span in iter_spans(build_span_tree(events)):
        totals[span.name].append(span.duration_ns)
    table = TextTable(
        ["Span", "Count", "Total(ms)", "Mean(ms)", "Max(ms)"],
        title="Span summary",
    )
    for name, durations in sorted(
        totals.items(), key=lambda item: -sum(item[1])
    ):
        table.add_row(
            [
                name,
                len(durations),
                f"{_ms(sum(durations)):.2f}",
                f"{_ms(sum(durations) / len(durations)):.3f}",
                f"{_ms(max(durations)):.3f}",
            ]
        )
    return table


# ----------------------------------------------------------------------
# Top bins by dispatch time
# ----------------------------------------------------------------------
def top_bins_table(
    events: Iterable[dict[str, Any]], limit: int = 10
) -> TextTable:
    """The ``sched.bin`` spans that spent the most dispatch wall time."""
    bins = [
        span
        for span in iter_spans(build_span_tree(events))
        if span.name == "sched.bin" and span.end is not None
    ]
    bins.sort(key=lambda span: -span.duration_ns)
    table = TextTable(
        ["Bin", "Threads", "Time(ms)", ""],
        title=f"Top bins by dispatch time ({len(bins)} swept)",
    )
    peak = bins[0].duration_ns if bins else 0
    for span in bins[:limit]:
        key = span.attrs.get("key", "?")
        table.add_row(
            [
                str(key),
                span.attrs.get("threads", "?"),
                f"{_ms(span.duration_ns):.3f}",
                _bar(span.duration_ns, peak),
            ]
        )
    return table


# ----------------------------------------------------------------------
# Miss-class timeline
# ----------------------------------------------------------------------
def miss_timeline_table(
    metrics: MetricsRegistry, level: str = "l1", limit: int = 40
) -> TextTable:
    """The per-interval miss-class series as a text timeline.

    Each row is one sampling interval: miss deltas by class plus a bar
    scaled to the busiest interval.  Long campaigns are downsampled to
    ``limit`` rows by striding, never truncating the tail.
    """
    series = metrics.series_.get(f"cache.{level}.classes")
    samples = series.samples if series is not None else []
    stride = max(1, -(-len(samples) // limit))
    rows = samples[::stride]
    table = TextTable(
        ["t(ms)", "Program", "Compulsory", "Capacity", "Conflict", ""],
        title=(
            f"{level.upper()} miss-class timeline "
            f"({len(samples)} samples, every {stride})"
        ),
    )
    peak = max(
        (sum(s.get(c, 0) for c in MISS_CLASSES) for s in samples), default=0
    )
    for sample in rows:
        total = sum(sample.get(c, 0) for c in MISS_CLASSES)
        table.add_row(
            [
                f"{_ms(sample['t']):.1f}",
                str(sample.get("program", ""))[:24],
                f"{sample.get('compulsory', 0):,}",
                f"{sample.get('capacity', 0):,}",
                f"{sample.get('conflict', 0):,}",
                _bar(total, peak),
            ]
        )
    return table


# ----------------------------------------------------------------------
# Text flamegraph
# ----------------------------------------------------------------------
def _merge_children(nodes: list[SpanNode]):
    """Group sibling spans by name: (name, total_ns, count, children)."""
    grouped: dict[str, list[SpanNode]] = defaultdict(list)
    for node in nodes:
        grouped[node.name].append(node)
    merged = []
    for name, group in grouped.items():
        total = sum(node.duration_ns for node in group)
        children = [child for node in group for child in node.children]
        merged.append((name, total, len(group), children))
    merged.sort(key=lambda item: -item[1])
    return merged


def render_flamegraph(
    events: Iterable[dict[str, Any]],
    max_depth: int = 6,
    min_pct: float = 0.5,
) -> str:
    """An aggregated call-tree ("flamegraph as text") of the span forest.

    Sibling spans with the same name merge; each line shows total wall
    time, call count, and share of the root.  Branches under ``min_pct``
    percent of the root are elided to keep the view readable.
    """
    roots = build_span_tree(events)
    if not roots:
        return "(no spans recorded)"
    lines: list[str] = ["Span flamegraph (wall time, merged by name):"]
    root_total = sum(node.duration_ns for node in roots) or 1

    def render(nodes: list[SpanNode], depth: int) -> None:
        if depth >= max_depth:
            return
        for name, total, count, children in _merge_children(nodes):
            pct = 100.0 * total / root_total
            if pct < min_pct:
                continue
            indent = "  " * depth
            lines.append(
                f"{indent}{name:<{max(1, 28 - 2 * depth)}} "
                f"{_ms(total):>10.2f}ms  x{count:<6} {pct:5.1f}%"
            )
            render(children, depth + 1)

    render(roots, 0)
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Run header
# ----------------------------------------------------------------------
def run_header(manifest: dict[str, Any] | None, events: list) -> str:
    lines = []
    if manifest:
        statuses = defaultdict(int)
        for record in manifest.get("records", {}).values():
            statuses[record.get("status", "?")] += 1
        status_text = (
            ", ".join(f"{v} {k}" for k, v in sorted(statuses.items()))
            or "nothing recorded"
        )
        lines.append(
            f"Run {manifest.get('run_id', '?')} "
            f"(created {manifest.get('created_at', '?')}): "
            f"{len(manifest.get('ids', []))} experiments planned — "
            f"{status_text}."
        )
    lines.append(f"{len(events)} telemetry events recorded.")
    return "\n".join(lines)
