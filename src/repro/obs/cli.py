"""Command-line entry point: ``repro-trace runs/<run-id> [options]``.

Summarizes a recorded campaign from its artifacts alone — the manifest,
``events.jsonl``, and ``metrics.json`` written by ``repro-experiments``
— with no re-simulation: a span summary, the bins that dominated
dispatch time, the miss-class timeline, and a text flamegraph.  The
companion ``trace.json`` in the same directory loads directly into
Perfetto / ``chrome://tracing`` for the visual version.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.obs.exporters import (
    COUNTERS_FILE,
    EVENTS_FILE,
    METRICS_FILE,
    counter_track_events,
    load_run,
    write_chrome_trace,
)
from repro.obs.report import (
    miss_timeline_table,
    render_flamegraph,
    run_header,
    span_summary_table,
    top_bins_table,
)
from repro.resilience.errors import CheckpointError


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description=(
            "Summarize a recorded repro-experiments run from its telemetry "
            "artifacts (events.jsonl, metrics.json) without re-simulating."
        ),
    )
    parser.add_argument(
        "run_dir",
        metavar="RUN_DIR",
        help="a run directory, e.g. runs/20260806-120000-42",
    )
    parser.add_argument(
        "--bins",
        type=int,
        default=10,
        metavar="N",
        help="how many top bins to list (default: %(default)s)",
    )
    parser.add_argument(
        "--level",
        choices=["l1", "l2"],
        default="l1",
        help="cache level for the miss-class timeline (default: %(default)s)",
    )
    parser.add_argument(
        "--depth",
        type=int,
        default=6,
        metavar="D",
        help="flamegraph depth limit (default: %(default)s)",
    )
    parser.add_argument(
        "--section",
        choices=["summary", "bins", "timeline", "flamegraph", "all"],
        default="all",
        help="print only one section (default: %(default)s)",
    )
    parser.add_argument(
        "--counters",
        action="store_true",
        help=(
            "export the metrics registry's gauges and time series as "
            f"Chrome counter tracks ({COUNTERS_FILE} beside trace.json) "
            "and print the track list instead of the text sections"
        ),
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    run_dir = Path(args.run_dir)
    if not run_dir.is_dir():
        print(f"repro-trace: error: {run_dir} is not a directory", file=sys.stderr)
        return 2
    try:
        manifest, events, metrics = load_run(run_dir)
    except CheckpointError as exc:
        print(f"repro-trace: error: {exc}", file=sys.stderr)
        return 2
    if not events and metrics is None:
        print(
            f"repro-trace: error: no telemetry under {run_dir} "
            f"(expected {EVENTS_FILE} and/or {METRICS_FILE}; was the run "
            "recorded with telemetry disabled?)",
            file=sys.stderr,
        )
        return 2

    if args.counters:
        if metrics is None:
            print(
                f"repro-trace: error: no {METRICS_FILE} under {run_dir}; "
                "counter tracks need the metrics registry",
                file=sys.stderr,
            )
            return 2
        events = counter_track_events(metrics)
        out_path = run_dir / COUNTERS_FILE
        write_chrome_trace(
            out_path, events, metadata={"source": "repro-trace --counters"}
        )
        tracks: dict[str, int] = {}
        for event in events:
            tracks[event["name"]] = tracks.get(event["name"], 0) + 1
        print(f"{out_path}: {len(events)} counter sample(s) on "
              f"{len(tracks)} track(s)")
        for name in sorted(tracks):
            print(f"  {name}  ({tracks[name]} sample(s))")
        return 0

    sections = []
    if args.section in ("summary", "all"):
        sections.append(run_header(manifest, events))
        sections.append(span_summary_table(events).render())
    if args.section in ("bins", "all"):
        sections.append(top_bins_table(events, limit=args.bins).render())
    if args.section in ("timeline", "all"):
        if metrics is not None:
            sections.append(
                miss_timeline_table(metrics, level=args.level).render()
            )
        else:
            sections.append("(no metrics.json; miss-class timeline skipped)")
    if args.section in ("flamegraph", "all"):
        sections.append(render_flamegraph(events, max_depth=args.depth))

    print("\n\n".join(sections))
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        sys.exit(0)  # e.g. `repro-trace runs/r1 | head`
