"""The event bus: structured spans, instants, and counter samples.

Events are plain dicts in emission order, timestamped with a monotonic
nanosecond clock relative to the bus's creation::

    {"ph": "B", "name": "sched.run", "ts": 12345, "tid": 1}
    {"ph": "E", "name": "sched.run", "ts": 99887, "tid": 1}
    {"ph": "i", "name": "verify.violation", "ts": ..., "args": {...}}
    {"ph": "C", "name": "cache.l1.classes", "ts": ..., "args": {...}}

The ``ph`` codes deliberately match the Chrome trace-event format
(``B``/``E`` duration begin/end, ``i`` instant, ``C`` counter) so the
export in :mod:`repro.obs.exporters` is a near-identity mapping.

``tid`` separates lanes that may overlap in time — thread packages get
their own lane via :meth:`EventBus.new_tid` so two packages' fork
batches never produce improperly nested ``B``/``E`` pairs in one lane;
everything emitted by the simulator and campaign drivers shares lane 0.

**Disabled fast path.**  Instrumented sites hold a bus reference and
guard their work with ``bus.enabled`` (or the owning telemetry handle's
``enabled``); the :data:`NULL_BUS` singleton additionally turns every
method into a no-op, so un-guarded calls on a disabled bus still cost
only an attribute lookup and an empty call.  The overhead-guard
benchmark (``benchmarks/test_obs_overhead.py``) holds this to <1% of a
mid-size simulation's wall clock.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Callable, Iterator


class EventBus:
    """Collects structured span/instant/counter events."""

    enabled = True

    def __init__(self, clock: Callable[[], int] = time.perf_counter_ns) -> None:
        self._clock = clock
        self._t0 = clock()
        self.events: list[dict[str, Any]] = []
        self._stacks: dict[int, list[str]] = {}
        self._tids = 0
        #: Events handed out by :meth:`drain` so far (for diagnostics).
        self.drained = 0

    # ------------------------------------------------------------------
    # Clocks and lanes
    # ------------------------------------------------------------------
    def now(self) -> int:
        """Nanoseconds since the bus was created (monotonic)."""
        return self._clock() - self._t0

    def new_tid(self) -> int:
        """A fresh lane id; lane 0 always exists and is the default."""
        self._tids += 1
        return self._tids

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    def begin(self, name: str, tid: int = 0, **attrs: Any) -> None:
        """Open a span on lane ``tid``."""
        event: dict[str, Any] = {"ph": "B", "name": name, "ts": self.now()}
        if tid:
            event["tid"] = tid
        if attrs:
            event["args"] = attrs
        self._stacks.setdefault(tid, []).append(name)
        self.events.append(event)

    def end(self, tid: int = 0, **attrs: Any) -> None:
        """Close the innermost open span on lane ``tid``.

        Closing with nothing open is tolerated (a no-op): exporters must
        never crash a run that mis-nested under an exception.
        """
        stack = self._stacks.get(tid)
        if not stack:
            return
        name = stack.pop()
        event: dict[str, Any] = {"ph": "E", "name": name, "ts": self.now()}
        if tid:
            event["tid"] = tid
        if attrs:
            event["args"] = attrs
        self.events.append(event)

    @contextmanager
    def span(self, name: str, tid: int = 0, **attrs: Any) -> Iterator[None]:
        """Context manager: a span around the ``with`` block."""
        self.begin(name, tid=tid, **attrs)
        try:
            yield
        finally:
            self.end(tid=tid)

    def instant(self, name: str, tid: int = 0, **attrs: Any) -> None:
        """A zero-duration event (oracle violations, allocations, ...)."""
        event: dict[str, Any] = {"ph": "i", "name": name, "ts": self.now()}
        if tid:
            event["tid"] = tid
        if attrs:
            event["args"] = attrs
        self.events.append(event)

    def counter(self, name: str, values: dict[str, Any], tid: int = 0) -> None:
        """A counter sample (renders as a Perfetto counter track)."""
        event: dict[str, Any] = {
            "ph": "C",
            "name": name,
            "ts": self.now(),
            "args": dict(values),
        }
        if tid:
            event["tid"] = tid
        self.events.append(event)

    # ------------------------------------------------------------------
    # Collection
    # ------------------------------------------------------------------
    @property
    def open_spans(self) -> int:
        return sum(len(stack) for stack in self._stacks.values())

    def depth(self, tid: int = 0) -> int:
        """How many spans are open on lane ``tid``."""
        return len(self._stacks.get(tid, ()))

    def unwind(self, depth: int, tid: int = 0) -> None:
        """Close spans on lane ``tid`` until only ``depth`` remain.

        Exception hygiene for nested instrumented scopes: a scope records
        ``depth()`` on entry and unwinds to it on the way out, closing
        exactly its own spans — never an enclosing scope's.
        """
        while self.depth(tid) > depth:
            self.end(tid=tid)

    def close_all(self) -> None:
        """Close every still-open span (crash/interrupt hygiene): a
        drained event log must always pair its ``B``/``E`` events."""
        for tid, stack in self._stacks.items():
            while stack:
                self.end(tid=tid)

    def drain(self) -> list[dict[str, Any]]:
        """Hand over the buffered events and clear the buffer.

        Open spans stay open (their ``E`` arrives in a later drain), so
        a campaign can flush incrementally after every experiment.
        """
        events, self.events = self.events, []
        self.drained += len(events)
        return events


class NullBus(EventBus):
    """A bus whose every method is a no-op; shared via :data:`NULL_BUS`.

    Buffers nothing and allocates nothing per call, so code that fails
    to guard with ``enabled`` still pays almost nothing.
    """

    enabled = False

    def __init__(self) -> None:  # no clock capture
        self.events = []
        self.drained = 0
        self._stacks = {}
        self._tids = 0

    def now(self) -> int:
        return 0

    def new_tid(self) -> int:
        return 0

    def begin(self, name: str, tid: int = 0, **attrs: Any) -> None:
        pass

    def end(self, tid: int = 0, **attrs: Any) -> None:
        pass

    @contextmanager
    def span(self, name: str, tid: int = 0, **attrs: Any) -> Iterator[None]:
        yield

    def instant(self, name: str, tid: int = 0, **attrs: Any) -> None:
        pass

    def counter(self, name: str, values: dict[str, Any], tid: int = 0) -> None:
        pass

    def close_all(self) -> None:
        pass

    def drain(self) -> list[dict[str, Any]]:
        return []


#: The process-wide disabled bus every un-instrumented object points at.
NULL_BUS = NullBus()
