"""repro.obs — the observability subsystem.

Three pieces, designed to cost nothing when off:

* :mod:`repro.obs.bus` — an event bus emitting structured spans and
  instants for the simulator's phases (setup, fork batches, bin sweeps,
  cache sampling intervals, oracle audits);
* :mod:`repro.obs.metrics` — a registry of counters, gauges, histograms
  and time series populated by the scheduler, the cache hierarchy, and
  the resilience layer;
* :mod:`repro.obs.exporters` — JSONL event logs, ``metrics.json``, and
  Chrome trace-event ``trace.json`` written into ``runs/<run-id>/``,
  summarized after the fact by the ``repro-trace`` CLI.

Everything hangs off a :class:`~repro.obs.telemetry.Telemetry` handle
carried through :class:`~repro.sim.context.SimContext` the same way the
verification hooks are; the module-level :data:`DISABLED` singleton is
the default everywhere, and instrumented sites guard their work with a
single ``if obs.enabled`` test.
"""

from repro.obs.bus import EventBus, NULL_BUS, NullBus
from repro.obs.config import (
    current_telemetry,
    resolve_telemetry,
    set_telemetry,
    telemetry_scope,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Series,
)
from repro.obs.telemetry import DISABLED, Telemetry

__all__ = [
    "EventBus",
    "NullBus",
    "NULL_BUS",
    "Counter",
    "Gauge",
    "Histogram",
    "Series",
    "MetricsRegistry",
    "Telemetry",
    "DISABLED",
    "current_telemetry",
    "set_telemetry",
    "telemetry_scope",
    "resolve_telemetry",
]
