"""Plain-text table rendering for experiment reports.

Every experiment in :mod:`repro.exp` renders its result the way the paper
prints its tables: a caption, a header row, and right-aligned numeric
columns.  ``TextTable`` is a tiny formatter that produces that layout
without pulling in any dependency.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence


def format_count(value: int | float) -> str:
    """Format a reference/miss count with thousands separators."""
    if isinstance(value, float) and not value.is_integer():
        return f"{value:,.1f}"
    return f"{int(value):,}"


def format_seconds(value: float) -> str:
    """Format a modeled time in seconds with two decimals, like the paper."""
    return f"{value:.2f}"


class TextTable:
    """Accumulate rows and render them as an aligned plain-text table.

    >>> t = TextTable(["Version", "R8000", "R10000"], title="Table 2")
    >>> t.add_row(["Threaded", 20.32, 16.85])
    >>> print(t.render())  # doctest: +SKIP
    """

    def __init__(self, columns: Sequence[str], title: str = "") -> None:
        self.title = title
        self.columns = list(columns)
        self._rows: list[list[str]] = []

    def add_row(self, cells: Iterable[object]) -> None:
        """Append a row; cells are stringified (floats get 2 decimals)."""
        row = []
        for cell in cells:
            if isinstance(cell, float):
                row.append(f"{cell:,.2f}")
            elif isinstance(cell, int):
                row.append(f"{cell:,}")
            else:
                row.append(str(cell))
        if len(row) != len(self.columns):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(self.columns)} columns"
            )
        self._rows.append(row)

    @property
    def rows(self) -> list[list[str]]:
        """The formatted rows added so far (copies, safe to mutate)."""
        return [list(row) for row in self._rows]

    def render(self) -> str:
        """Render the table as aligned text with a rule under the header."""
        widths = [len(col) for col in self.columns]
        for row in self._rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def fmt(cells: Sequence[str]) -> str:
            # First column left-aligned (row labels), the rest right-aligned.
            parts = [cells[0].ljust(widths[0])]
            parts += [c.rjust(w) for c, w in zip(cells[1:], widths[1:])]
            return "  ".join(parts).rstrip()

        lines = []
        if self.title:
            lines.append(self.title)
        lines.append(fmt(self.columns))
        lines.append("-" * (sum(widths) + 2 * (len(widths) - 1)))
        lines.extend(fmt(row) for row in self._rows)
        return "\n".join(lines)
