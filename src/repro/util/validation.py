"""Argument-validation helpers used across the library.

The simulator's configuration surface is full of sizes that must be
positive powers of two (cache and line sizes) or counts that must be
non-negative.  Centralising the checks keeps error messages uniform and
the call sites short.
"""

from __future__ import annotations


def require_positive(value: int | float, name: str) -> None:
    """Raise ``ValueError`` unless ``value`` is strictly positive."""
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value!r}")


def require_non_negative(value: int | float, name: str) -> None:
    """Raise ``ValueError`` unless ``value`` is zero or positive."""
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")


def require_power_of_two(value: int, name: str) -> None:
    """Raise ``ValueError`` unless ``value`` is a positive power of two."""
    if not isinstance(value, int) or value <= 0 or value & (value - 1):
        raise ValueError(f"{name} must be a positive power of two, got {value!r}")


def require_in_range(
    value: int | float, name: str, low: int | float, high: int | float
) -> None:
    """Raise ``ValueError`` unless ``low <= value <= high``."""
    if not low <= value <= high:
        raise ValueError(f"{name} must be in [{low}, {high}], got {value!r}")
