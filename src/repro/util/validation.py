"""Argument-validation helpers used across the library.

The simulator's configuration surface is full of sizes that must be
positive powers of two (cache and line sizes) or counts that must be
non-negative.  Centralising the checks keeps error messages uniform and
the call sites short.

All helpers raise :class:`repro.resilience.errors.ConfigError` naming
the offending field.  ``ConfigError`` subclasses ``ValueError``, so
call sites (and tests) written against ``ValueError`` keep working.
"""

from __future__ import annotations

from repro.resilience.errors import ConfigError


def require_positive(value: int | float, name: str) -> None:
    """Raise ``ConfigError`` unless ``value`` is strictly positive."""
    if value <= 0:
        raise ConfigError(f"{name} must be positive, got {value!r}", field=name)


def require_non_negative(value: int | float, name: str) -> None:
    """Raise ``ConfigError`` unless ``value`` is zero or positive."""
    if value < 0:
        raise ConfigError(
            f"{name} must be non-negative, got {value!r}", field=name
        )


def require_power_of_two(value: int, name: str) -> None:
    """Raise ``ConfigError`` unless ``value`` is a positive power of two."""
    if not isinstance(value, int) or value <= 0 or value & (value - 1):
        raise ConfigError(
            f"{name} must be a positive power of two, got {value!r}", field=name
        )


def require_in_range(
    value: int | float, name: str, low: int | float, high: int | float
) -> None:
    """Raise ``ConfigError`` unless ``low <= value <= high``."""
    if not low <= value <= high:
        raise ConfigError(
            f"{name} must be in [{low}, {high}], got {value!r}", field=name
        )
