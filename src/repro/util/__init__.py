"""Shared utilities: validation helpers and text-table rendering."""

from repro.util.tables import TextTable, format_count, format_seconds
from repro.util.validation import (
    require_in_range,
    require_non_negative,
    require_positive,
    require_power_of_two,
)

__all__ = [
    "TextTable",
    "format_count",
    "format_seconds",
    "require_in_range",
    "require_non_negative",
    "require_positive",
    "require_power_of_two",
]
