"""The SMP thread package: bins as the unit of parallel work.

``SmpThreadPackage`` keeps the three-call interface.  ``th_fork`` is
unchanged (forking is a serial section, executed on processor 0);
``th_run`` partitions the ready list across processors with an
assignment policy and dispatches each processor's bins against its own
private cache hierarchy (via the switchable recorder).

The simulation executes processors one after another — their caches are
private, so only the shared-memory *timing* needs the parallel view,
which the engine reconstructs as a makespan.
"""

from __future__ import annotations

from repro.core.package import ThreadPackage
from repro.core.stats import SchedulingStats, next_run_seq
from repro.smp.assign import AssignmentPolicy, resolve_assignment
from repro.smp.recorder import SwitchableRecorder


class SmpThreadPackage(ThreadPackage):
    """A :class:`ThreadPackage` whose ``th_run`` fans bins out to CPUs."""

    def __init__(
        self,
        *args,
        smp_recorder: SwitchableRecorder,
        assignment: str | AssignmentPolicy = "chunked",
        **kwargs,
    ) -> None:
        super().__init__(*args, recorder=smp_recorder, **kwargs)
        self.smp_recorder = smp_recorder
        self.assignment = resolve_assignment(assignment)
        self.processors = len(smp_recorder.recorders)
        #: Per-CPU totals accumulated over every th_run.
        self.cpu_dispatches = [0] * self.processors
        self.cpu_bins = [0] * self.processors

    def th_run(self, keep: int = 0) -> SchedulingStats:
        """Partition bins over the processors and run each queue.

        Bin order within a processor follows the traversal policy (the
        locality tour survives on each CPU); the assignment policy
        decides which processor owns which bin.
        """
        ordered = self.policy(self.table.ready)
        queues = self.assignment(ordered, self.processors)
        counts: list[int] = []
        for cpu, queue in enumerate(queues):
            self.smp_recorder.switch_to(cpu)
            before = self._total_dispatches
            cpu_counts = self.execute_bins(queue)
            counts.extend(cpu_counts)
            self.cpu_dispatches[cpu] += self._total_dispatches - before
            self.cpu_bins[cpu] += len(cpu_counts)
        self.smp_recorder.switch_to(0)
        if not keep:
            self.table.clear_threads()
        stats = SchedulingStats.from_counts(counts, seq=next_run_seq())
        self.run_history.append(stats)
        return stats
