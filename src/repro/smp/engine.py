"""The SMP simulator: per-processor cache simulation + makespan timing.

Existing traced programs run unchanged: :class:`SmpContext` mirrors the
uniprocessor :class:`~repro.sim.context.SimContext` interface, and any
``make_thread_package`` it hands out fans bins across processors.

The timing model (documented in DESIGN.md's SMP section): forking is a
serial section on processor 0 charged at the Table 1 fork cost; each
processor then executes its bin queue, its time estimated from its own
instruction/miss counts by the paper's crude analysis, plus a fixed
dispatch cost per bin handed to it; the modeled parallel time
(makespan) is the serial section plus the slowest processor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.cache.hierarchy import HierarchyStats
from repro.core.policies import TraversalPolicy
from repro.core.stats import SchedulingStats
from repro.machine.timing import TimeBreakdown, TimingInputs, TimingModel
from repro.mem.allocator import AddressSpace
from repro.mem.arrays import ArrayHandle
from repro.mem.layout import Layout
from repro.smp.assign import AssignmentPolicy
from repro.smp.machine import SmpMachine
from repro.smp.package import SmpThreadPackage
from repro.smp.recorder import SwitchableRecorder
from repro.trace.costmodel import DEFAULT_THREAD_COSTS, ThreadCostModel
from repro.trace.recorder import TraceRecorder


@dataclass
class SmpContext:
    """Drop-in replacement for ``SimContext`` on an SMP machine."""

    smp: SmpMachine
    recorder: SwitchableRecorder
    space: AddressSpace
    assignment: str | AssignmentPolicy
    packages: list[SmpThreadPackage] = field(default_factory=list)

    @property
    def machine(self):
        """The per-processor machine (programs size blocks from its L2)."""
        return self.smp.base

    @property
    def hierarchy(self):
        """The *current* processor's hierarchy."""
        return self.recorder.hierarchy

    def allocate_array(
        self,
        name: str,
        shape: tuple[int, ...],
        element_size: int = 8,
        layout: Layout = Layout.COLUMN_MAJOR,
    ) -> ArrayHandle:
        size = element_size
        for dim in shape:
            size *= dim
        region = self.space.allocate(name, size)
        return ArrayHandle(
            name, region.base, shape, element_size=element_size, layout=layout
        )

    def make_thread_package(
        self,
        block_size: int = 0,
        hash_size: int = 0,
        fold_symmetric: bool = False,
        policy: str | TraversalPolicy = "creation",
        costs: ThreadCostModel = DEFAULT_THREAD_COSTS,
    ) -> SmpThreadPackage:
        package = SmpThreadPackage(
            self.smp.base.l2.size,
            block_size=block_size,
            hash_size=hash_size,
            fold_symmetric=fold_symmetric,
            policy=policy,
            smp_recorder=self.recorder,
            assignment=self.assignment,
            address_space=self.space,
            costs=costs,
        )
        self.packages.append(package)
        return package

    @property
    def total_forks(self) -> int:
        return sum(p.total_forks for p in self.packages)


@dataclass(frozen=True)
class CpuReport:
    """One processor's share of the run."""

    cpu: int
    stats: HierarchyStats
    app_instructions: int
    dispatches: int
    bins: int
    exec_time: TimeBreakdown
    dispatch_time: float

    @property
    def busy_seconds(self) -> float:
        return self.exec_time.total + self.dispatch_time


@dataclass(frozen=True)
class SmpResult:
    """Everything measured from one SMP run."""

    program: str
    machine: str
    processors: int
    assignment: str
    cpus: list[CpuReport]
    forks: int
    fork_time: float
    sched: SchedulingStats | None
    write_shared_lines: int
    written_lines: int
    #: ``line -> processors`` for the write-shared L2 lines — the
    #: measured counterpart of the static RC003 advisory (see
    #: ``repro.smp.recorder``).
    write_sharers: dict[int, frozenset[int]] = field(default_factory=dict)
    payload: Any = None

    @property
    def write_shared_line_set(self) -> frozenset[int]:
        """Identities of the write-shared L2 lines."""
        return frozenset(self.write_sharers)

    @property
    def makespan(self) -> float:
        """Serial fork section plus the slowest processor."""
        slowest = max((c.busy_seconds for c in self.cpus), default=0.0)
        return self.fork_time + slowest

    @property
    def total_l2_misses(self) -> int:
        return sum(c.stats.l2.misses for c in self.cpus)

    @property
    def busy_seconds(self) -> list[float]:
        return [c.busy_seconds for c in self.cpus]

    @property
    def load_imbalance(self) -> float:
        """max/mean busy time across processors (1.0 = perfect)."""
        busy = self.busy_seconds
        mean = sum(busy) / len(busy)
        if mean == 0:
            return 1.0
        return max(busy) / mean

    def speedup_over(self, serial_seconds: float) -> float:
        """Speedup of this run's makespan over a serial time."""
        if self.makespan == 0:
            return float("inf")
        return serial_seconds / self.makespan

    def summary(self) -> str:
        busy = ", ".join(f"{b:.3f}" for b in self.busy_seconds)
        return (
            f"{self.program} on {self.machine} ({self.assignment}): "
            f"makespan {self.makespan:.3f}s (fork {self.fork_time:.3f}s; "
            f"busy [{busy}]), {self.total_l2_misses:,} L2 misses, "
            f"{self.write_shared_lines:,} write-shared lines"
        )


class SmpSimulator:
    """Runs traced programs on an :class:`SmpMachine`."""

    def __init__(self, machine: SmpMachine) -> None:
        self.machine = machine
        self.timing = TimingModel(machine.base)

    def run(
        self,
        program: Callable[[SmpContext], Any],
        assignment: str | AssignmentPolicy = "chunked",
        name: str | None = None,
        code_footprint: int = 4096,
    ) -> SmpResult:
        hierarchies = self.machine.build_hierarchies()
        recorders = [TraceRecorder(h) for h in hierarchies]
        switchable = SwitchableRecorder(
            recorders, self.machine.base.l2.line_bits
        )
        space = AddressSpace(stagger=3 * self.machine.base.l2.line_size)
        context = SmpContext(
            smp=self.machine,
            recorder=switchable,
            space=space,
            assignment=assignment,
        )
        if code_footprint:
            for hierarchy in hierarchies:
                hierarchy.charge_code_footprint(code_footprint)
        payload = program(context)

        cpus = []
        for cpu, (hierarchy, recorder) in enumerate(zip(hierarchies, recorders)):
            stats = hierarchy.snapshot()
            exec_time = self.timing.estimate(
                TimingInputs(
                    instructions=recorder.app_instructions,
                    l1_misses=stats.l1.misses,
                    l2_misses=stats.l2.misses,
                    forks=0,
                    thread_runs=sum(
                        p.cpu_dispatches[cpu] for p in context.packages
                    ),
                )
            )
            bins = sum(p.cpu_bins[cpu] for p in context.packages)
            cpus.append(
                CpuReport(
                    cpu=cpu,
                    stats=stats,
                    app_instructions=recorder.app_instructions,
                    dispatches=sum(
                        p.cpu_dispatches[cpu] for p in context.packages
                    ),
                    bins=bins,
                    exec_time=exec_time,
                    dispatch_time=bins * self.machine.dispatch_cost_s,
                )
            )
        forks = context.total_forks
        sched = max(
            (s for package in context.packages for s in package.run_history),
            key=lambda s: s.seq,
            default=None,
        )
        assignment_name = assignment if isinstance(assignment, str) else getattr(
            assignment, "__name__", "custom"
        )
        return SmpResult(
            program=name or getattr(program, "__name__", "program"),
            machine=self.machine.name,
            processors=self.machine.processors,
            assignment=assignment_name,
            cpus=cpus,
            forks=forks,
            fork_time=forks * self.machine.base.fork_cost_s,
            sched=sched,
            write_shared_lines=switchable.write_shared_lines,
            written_lines=switchable.written_lines,
            write_sharers=switchable.write_sharer_map,
            payload=payload,
        )
