"""Multiprocessor machine model: P identical processors, shared memory."""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.hierarchy import CacheHierarchy
from repro.machine.spec import MachineSpec
from repro.util.validation import require_positive


@dataclass(frozen=True)
class SmpMachine:
    """P copies of ``base`` with private cache hierarchies.

    The model matches mid-90s SMPs (and the paper's framing): private
    L1/L2 per processor, a shared DRAM behind them.  ``dispatch_cost_s``
    is the extra per-bin cost of handing a bin to a remote processor
    (queue insertion + initial cache warm-up is already captured by the
    cache simulation itself).
    """

    base: MachineSpec
    processors: int
    dispatch_cost_s: float = 2.0e-6

    def __post_init__(self) -> None:
        require_positive(self.processors, "processors")
        if self.dispatch_cost_s < 0:
            raise ValueError("dispatch_cost_s must be non-negative")

    @property
    def name(self) -> str:
        return f"{self.base.name}x{self.processors}"

    def build_hierarchies(self) -> list[CacheHierarchy]:
        """One private cache hierarchy per processor."""
        return [self.base.build_hierarchy() for _ in range(self.processors)]
