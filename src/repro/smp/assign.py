"""Bin-to-processor assignment policies.

The unit of assignment is the bin: splitting one would destroy exactly
the locality the scheduler created.  Policies trade load balance against
affinity:

* ``round_robin`` — bins dealt in ready-list order; adjacent bins (which
  often share a block along one dimension) land on different processors.
* ``chunked`` — contiguous runs of the ready list per processor, keeping
  block-sharing neighbours together.
* ``lpt_balance`` — longest-processing-time greedy on thread counts: the
  classic makespan heuristic, best when bins are uneven (N-body).
* ``affinity_hash`` — processor = hash of the block coordinates: the
  same block always lands on the same processor, so re-runs (iterative
  programs) find their data still cached — cache-affinity scheduling.
"""

from __future__ import annotations

from typing import Callable

from repro.core.bins import Bin

AssignmentPolicy = Callable[[list[Bin], int], list[list[Bin]]]


def round_robin(bins: list[Bin], processors: int) -> list[list[Bin]]:
    """Deal bins to processors in ready-list order."""
    queues: list[list[Bin]] = [[] for _ in range(processors)]
    for index, bin_ in enumerate(bins):
        queues[index % processors].append(bin_)
    return queues


def chunked(bins: list[Bin], processors: int) -> list[list[Bin]]:
    """Contiguous slices of the ready list, one per processor."""
    queues: list[list[Bin]] = [[] for _ in range(processors)]
    if not bins:
        return queues
    per_cpu = -(-len(bins) // processors)
    for cpu in range(processors):
        queues[cpu] = bins[cpu * per_cpu : (cpu + 1) * per_cpu]
    return queues


def lpt_balance(bins: list[Bin], processors: int) -> list[list[Bin]]:
    """Longest-processing-time-first greedy by thread count."""
    queues: list[list[Bin]] = [[] for _ in range(processors)]
    loads = [0] * processors
    for bin_ in sorted(bins, key=lambda b: b.thread_count, reverse=True):
        cpu = loads.index(min(loads))
        queues[cpu].append(bin_)
        loads[cpu] += bin_.thread_count
    return queues


def affinity_hash(bins: list[Bin], processors: int) -> list[list[Bin]]:
    """Processor chosen by hashing the block coordinates (stable across
    runs: the same block's data stays warm on the same processor)."""
    queues: list[list[Bin]] = [[] for _ in range(processors)]
    for bin_ in bins:
        c1, c2, c3 = bin_.key
        cpu = (c1 * 0x9E3779B1 + c2 * 0x85EBCA77 + c3 * 0xC2B2AE3D) % processors
        queues[cpu].append(bin_)
    return queues


ASSIGNMENT_POLICIES: dict[str, AssignmentPolicy] = {
    "round_robin": round_robin,
    "chunked": chunked,
    "lpt": lpt_balance,
    "affinity": affinity_hash,
}


def resolve_assignment(policy: str | AssignmentPolicy) -> AssignmentPolicy:
    """Look up a policy by name, or pass a callable through."""
    if callable(policy):
        return policy
    try:
        return ASSIGNMENT_POLICIES[policy]
    except KeyError:
        raise ValueError(
            f"unknown assignment policy {policy!r}; choose from "
            f"{sorted(ASSIGNMENT_POLICIES)}"
        ) from None
