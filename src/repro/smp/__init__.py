"""SMP extension: locality scheduling on a symmetric multiprocessor.

Section 7 of the paper: "It appears that the idea proposed in this paper
can be extended in a straightforward manner to improve performance on
symmetric multiprocessors, but this remains to be demonstrated."  This
package demonstrates it.

The extension is exactly the straightforward one: the *bin* — already
the unit of locality — becomes the unit of parallel work.  Whole bins
are assigned to processors (never split), so each processor's L2 sees
the same clustered reference stream the uniprocessor scheduler produces,
and bins that share blocks can be kept on the same processor across runs
(cache affinity, cf. Squillante & Lazowska in the paper's related work).

* :class:`SmpMachine` — P copies of a base machine sharing memory.
* :class:`SmpSimulator` / :class:`SmpResult` — per-CPU cache simulation,
  makespan timing, speedup versus the serial schedule, and a
  false-sharing report (L2 lines written from more than one CPU).
* :mod:`repro.smp.assign` — bin-to-CPU policies: round-robin, contiguous
  chunks, load-balanced (LPT), and affinity hashing.
"""

from repro.smp.assign import ASSIGNMENT_POLICIES, affinity_hash, chunked, lpt_balance, round_robin
from repro.smp.engine import SmpResult, SmpSimulator
from repro.smp.machine import SmpMachine
from repro.smp.recorder import SwitchableRecorder

__all__ = [
    "ASSIGNMENT_POLICIES",
    "affinity_hash",
    "chunked",
    "lpt_balance",
    "round_robin",
    "SmpResult",
    "SmpSimulator",
    "SmpMachine",
    "SwitchableRecorder",
]
