"""A recorder proxy that routes references to the executing processor.

Traced programs bind ``ctx.recorder`` once, so redirecting their
references to whichever processor is currently running requires a proxy
with a mutable target.  The proxy also keeps the false-sharing ledger:
every L2 line written from a processor is recorded, and lines written
from more than one processor are reported (on a real SMP those lines
would ping-pong under an invalidate protocol; the paper's workloads
mostly avoid this because bins group neighbouring writes).

This ledger is the runtime twin of the static RC003 advisory
(``repro.analysis.races``): RC003 predicts cross-*bin* write sharing
from capture execution, and since an assignment policy places whole
bins on processors, every line this ledger sees shared between two
worker processors must come from two different bins — i.e. must have
been predicted.  ``write_sharer_map`` exposes the line identities and
their writers so that containment can actually be checked.
"""

from __future__ import annotations

from repro.mem.arrays import RefSegment
from repro.trace.recorder import TraceRecorder, segment_to_lines


class SwitchableRecorder:
    """Forwards the :class:`TraceRecorder` interface to ``current`` CPU."""

    def __init__(self, recorders: list[TraceRecorder], l2_line_bits: int) -> None:
        if not recorders:
            raise ValueError("need at least one recorder")
        self.recorders = recorders
        self.current = 0
        self._l2_line_bits = l2_line_bits
        #: L2 line -> set of processors that wrote it.
        self._writers: dict[int, set[int]] = {}

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    @property
    def target(self) -> TraceRecorder:
        return self.recorders[self.current]

    def switch_to(self, cpu: int) -> None:
        if not 0 <= cpu < len(self.recorders):
            raise IndexError(f"no processor {cpu}")
        self.current = cpu

    # ------------------------------------------------------------------
    # TraceRecorder interface (forwarded)
    # ------------------------------------------------------------------
    def record(self, segment: RefSegment, writes: int = 0) -> None:
        if writes:
            self._note_writes(segment)
        self.target.record(segment, writes=writes)

    def record_interleaved(self, segments, writes: int = 0) -> None:
        # Only the store operands count for the ledger.  The trace API's
        # convention (shared with the capture layer, see
        # ``repro.analysis.capture``): the trailing ceil(writes / count)
        # segments of a load/.../store loop body are the stores.
        segments = list(segments)
        if writes and segments:
            count = max(segment.count for segment in segments)
            stores = min(len(segments), -(-writes // count))
            for segment in segments[len(segments) - stores :]:
                self._note_writes(segment)
        self.target.record_interleaved(segments, writes=writes)

    def record_lines(self, lines, counts=None, writes: int = 0) -> None:
        # Same convention as capture: the trailing entries whose
        # accumulated reference counts cover ``writes`` are the stores.
        if writes:
            shift = self._l2_line_bits - self.target.hierarchy.l1d.config.line_bits
            tally = counts if counts is not None else [1] * len(lines)
            remaining = writes
            for line, count in zip(reversed(lines), reversed(tally)):
                if remaining <= 0:
                    break
                self._writers.setdefault(line >> shift, set()).add(self.current)
                remaining -= count
        self.target.record_lines(lines, counts, writes=writes)

    def count_instructions(self, count: int) -> None:
        self.target.count_instructions(count)

    def count_thread_instructions(self, count: int) -> None:
        self.target.count_thread_instructions(count)

    def line_of(self, address: int) -> int:
        return self.target.line_of(address)

    @property
    def hierarchy(self):
        return self.target.hierarchy

    @property
    def app_instructions(self) -> int:
        return sum(r.app_instructions for r in self.recorders)

    @property
    def thread_instructions(self) -> int:
        return sum(r.thread_instructions for r in self.recorders)

    @property
    def total_instructions(self) -> int:
        return sum(r.total_instructions for r in self.recorders)

    # ------------------------------------------------------------------
    # False-sharing ledger
    # ------------------------------------------------------------------
    def _note_writes(self, segment: RefSegment) -> None:
        lines, _counts = segment_to_lines(segment, self._l2_line_bits)
        cpu = self.current
        writers = self._writers
        for line in lines:
            writers.setdefault(line, set()).add(cpu)

    @property
    def write_shared_lines(self) -> int:
        """L2 lines written from more than one processor."""
        return sum(1 for cpus in self._writers.values() if len(cpus) > 1)

    @property
    def write_sharer_map(self) -> dict[int, frozenset[int]]:
        """``line -> processors`` for the write-shared L2 lines only.

        Comparable against the static RC003 prediction when the run
        uses the same machine and allocation order as the capture.
        """
        return {
            line: frozenset(cpus)
            for line, cpus in self._writers.items()
            if len(cpus) > 1
        }

    @property
    def written_lines(self) -> int:
        return len(self._writers)
