"""Deterministic fault injection at named sites.

The experiment stack calls :func:`fault_point` at a handful of named
sites (``sim.run``, ``exp.before``, ``checkpoint.write``, ...).  In
normal operation those calls are no-ops costing one dict lookup.  A test
— or ``repro-experiments --inject-fault`` — arms a fault at a site and
the next ``times`` visits raise, deterministically, with no randomness
or clocks involved.  That is what lets the test suite *prove* the retry,
graceful-degradation, checkpoint, and resume paths work.

Modes
-----
``fail``
    Raise :class:`FaultInjected` (transient, so bounded retry kicks in).
``fail-hard``
    Raise :class:`FaultInjected` marked non-transient (never retried).
``timeout``
    Raise :class:`ExperimentTimeout`, simulating the watchdog firing.
``interrupt``
    Raise ``KeyboardInterrupt``, simulating Ctrl-C at that exact site.

Process-level chaos sites
-------------------------
The ``worker.*`` sites are different in kind: instead of raising, they
misbehave at the *process* level, exercising the supervised campaign
executor (:mod:`repro.resilience.supervisor`).  They only fire inside
``--jobs`` worker processes (serial campaigns never visit them), and
the ``mode`` field is ignored — the site name determines the behaviour:

``worker.crash``
    ``os._exit`` the worker immediately (a segfault/OOM-kill stand-in);
    the parent observes a broken pool, rebuilds it, and resubmits or
    quarantines the job.
``worker.stall``
    Suppress the worker's heartbeat and sleep, wedged, until the
    parent's stall detector SIGKILLs it (a bounded backstop exit keeps
    detection-disabled runs from hanging forever).
``worker.slow``
    Sleep ``WORKER_SLOW_S`` and continue normally — latency injection
    for backpressure and ETA behaviour, not a failure.

Disk fault sites
----------------
The ``io.*`` sites exercise the durable run store
(:mod:`repro.resilience.checkpoint` and
:mod:`repro.resilience.journal`); like the ``worker.*`` sites, the site
name determines the behaviour and ``mode`` is ignored:

``io.enospc``
    Raise ``OSError(ENOSPC)`` inside the write, simulating a full disk;
    the store reports it as a transient ``CheckpointError``.
``io.fsync-fail``
    Raise ``OSError(EIO)`` at the fsync point — the write appeared to
    succeed but durability could not be confirmed.
``io.torn-write``
    The writer leaves a *torn* file (a prefix of the new content) at
    the final path and raises, simulating a crash mid-write on a
    non-atomic filesystem.  Salvage and ``repro-doctor`` must recover.
``io.corrupt``
    A byte of the just-published file is flipped *silently* — the
    writer believes the write succeeded.  Bit rot; only checksums can
    catch it later.
"""

from __future__ import annotations

import errno
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.resilience.errors import ConfigError, ExperimentTimeout, FaultInjected

#: Sites the stack instruments; kept here so tests and ``--inject-fault``
#: can validate a spec before arming it.
KNOWN_SITES = (
    "sim.run",            # Simulator.run, before the program executes
    "exp.before",         # campaign driver, before an experiment starts
    "exp.version",        # runners.run_versions, before each program version
    "checkpoint.write",   # checkpoint layer, after temp write / before rename
    "verify.oracle",      # verification oracles, on every oracle check
    "thread.proc",        # guarded execution, before each thread proc runs
    "worker.crash",       # --jobs worker, before the experiment: die outright
    "worker.stall",       # --jobs worker: wedge until the stall detector kills us
    "worker.slow",        # --jobs worker: sleep, then continue (latency injection)
    "io.enospc",          # run store writes: OSError(ENOSPC), disk full
    "io.fsync-fail",      # run store writes: OSError(EIO) at the fsync point
    "io.torn-write",      # run store writes: torn file at the final path, then raise
    "io.corrupt",         # run store writes: silent byte flip after publishing
)

#: Injected ``worker.slow`` sleep; short enough for tests, long enough
#: to reorder completions against healthy workers.
WORKER_SLOW_S = 0.25

MODES = ("fail", "fail-hard", "timeout", "interrupt")


@dataclass
class ArmedFault:
    """One armed failure: fire at ``site`` for the next ``times`` visits."""

    site: str
    mode: str = "fail"
    times: int = 1
    message: str = ""
    triggered: int = field(default=0, init=False)

    def fire(self, **context: Any) -> None:
        message = self.message or f"injected {self.mode} at {self.site}"
        if self.site == "worker.crash":
            # Imported here: the supervisor imports nothing from this
            # module, but keeping the constant there names the protocol.
            from repro.resilience.supervisor import WORKER_CRASH_EXIT

            os._exit(WORKER_CRASH_EXIT)
        if self.site == "worker.stall":
            from repro.resilience.supervisor import (
                STALL_BACKSTOP_S,
                WORKER_CRASH_EXIT,
                suppress_heartbeat,
            )

            suppress_heartbeat()
            deadline = time.monotonic() + STALL_BACKSTOP_S
            while time.monotonic() < deadline:
                time.sleep(0.05)  # wedged: waiting for the SIGKILL
            os._exit(WORKER_CRASH_EXIT)  # backstop when detection is off
        if self.site == "worker.slow":
            time.sleep(WORKER_SLOW_S)
            return
        if self.site == "io.enospc":
            raise OSError(
                errno.ENOSPC, self.message or "injected: no space left on device"
            )
        if self.site == "io.fsync-fail":
            raise OSError(errno.EIO, self.message or "injected: fsync failed")
        if self.mode == "interrupt":
            raise KeyboardInterrupt(message)
        if self.mode == "timeout":
            raise ExperimentTimeout(message, site=self.site, **context)
        transient = self.mode == "fail"
        raise FaultInjected(
            message, site=self.site, transient=transient, **context
        )


class FaultInjector:
    """Registry of armed faults, consulted by every :func:`fault_point`."""

    def __init__(self) -> None:
        self._armed: dict[str, ArmedFault] = {}
        #: Faults actually fired over the injector's lifetime (survives
        #: :meth:`reset`); the campaign exports it as a gauge.
        self.fired_total = 0

    def arm(
        self,
        site: str,
        mode: str = "fail",
        times: int = 1,
        message: str = "",
    ) -> ArmedFault:
        """Arm ``site`` to raise on its next ``times`` visits."""
        if mode not in MODES:
            raise ConfigError(
                f"unknown fault mode {mode!r}; choose from {', '.join(MODES)}",
                field="mode",
            )
        if times < 1:
            raise ConfigError(
                f"fault times must be >= 1, got {times}", field="times"
            )
        fault = ArmedFault(site=site, mode=mode, times=times, message=message)
        self._armed[site] = fault
        return fault

    def arm_from_spec(self, spec: str) -> ArmedFault:
        """Arm from a CLI spec ``site[:mode[:times]]``.

        e.g. ``sim.run:fail:2`` fails the next two simulations,
        ``exp.before:interrupt`` simulates Ctrl-C before the next
        experiment.
        """
        parts = spec.split(":")
        if not parts[0]:
            raise ConfigError(f"empty fault site in {spec!r}", field="site")
        site = parts[0]
        mode = parts[1] if len(parts) > 1 and parts[1] else "fail"
        try:
            times = int(parts[2]) if len(parts) > 2 else 1
        except ValueError:
            raise ConfigError(
                f"fault times must be an integer in {spec!r}", field="times"
            ) from None
        if site not in KNOWN_SITES:
            raise ConfigError(
                f"unknown fault site {site!r}; choose from "
                f"{', '.join(KNOWN_SITES)}",
                field="site",
            )
        return self.arm(site, mode=mode, times=times)

    def disarm(self, site: str) -> None:
        self._armed.pop(site, None)

    def export(self, exclude: tuple[str, ...] = ()) -> list[dict[str, Any]]:
        """Picklable specs of the currently armed faults.

        The parallel campaign executor ships these to worker processes
        (minus ``exclude``, the sites that fire in the parent) so an
        armed fault behaves identically whether the experiment runs
        in-process or in a worker.
        """
        return [
            {
                "site": fault.site,
                "mode": fault.mode,
                "times": fault.times,
                "message": fault.message,
            }
            for fault in self._armed.values()
            if fault.site not in exclude
        ]

    def reset(self) -> None:
        """Disarm everything (tests call this between cases)."""
        self._armed.clear()

    def armed(self, site: str) -> ArmedFault | None:
        return self._armed.get(site)

    def fire(self, site: str, **context: Any) -> None:
        """Raise if a fault is armed at ``site``; otherwise no-op."""
        fault = self._armed.get(site)
        if fault is None or fault.times <= 0:
            return
        fault.times -= 1
        fault.triggered += 1
        self.fired_total += 1
        if fault.times <= 0:
            self._armed.pop(site, None)
        fault.fire(**context)

    @contextmanager
    def injected(
        self, site: str, mode: str = "fail", times: int = 1
    ) -> Iterator[ArmedFault]:
        """Arm a fault for the duration of a ``with`` block."""
        fault = self.arm(site, mode=mode, times=times)
        try:
            yield fault
        finally:
            if self._armed.get(site) is fault:
                self._armed.pop(site)


#: The process-wide injector the instrumented sites consult.
FAULTS = FaultInjector()


def fault_point(site: str, **context: Any) -> None:
    """Hook called by instrumented code; raises only when armed."""
    FAULTS.fire(site, **context)
