"""Bounded retry-with-backoff and a watchdog timeout.

Both pieces are deliberately dependency-injectable (``sleep=``) and
signal-free where possible so the test suite can exercise them
deterministically: the retry tests pass a recording fake sleep, and the
timeout tests use either a tiny real timer or the ``timeout`` fault
mode, which raises the same :class:`ExperimentTimeout` without waiting.
"""

from __future__ import annotations

import signal
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Iterator

from repro.resilience.errors import ConfigError, ExperimentTimeout


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to retry transient failures, and how patiently.

    Delay before retry ``k`` (1-based) is
    ``min(backoff_s * factor**(k-1), max_backoff_s)`` — deterministic,
    no jitter, because the simulator itself is deterministic and jitter
    would only blur test assertions.
    """

    retries: int = 0
    backoff_s: float = 0.05
    factor: float = 2.0
    max_backoff_s: float = 2.0

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ConfigError(
                f"retries must be non-negative, got {self.retries}",
                field="retries",
            )
        if self.backoff_s < 0:
            raise ConfigError(
                f"backoff_s must be non-negative, got {self.backoff_s}",
                field="backoff_s",
            )

    def delay(self, attempt: int) -> float:
        """Seconds to wait before retry ``attempt`` (1-based)."""
        return min(self.backoff_s * self.factor ** (attempt - 1), self.max_backoff_s)


def is_transient(exc: BaseException) -> bool:
    """Whether the retry layer should consider retrying this failure."""
    return bool(getattr(exc, "transient", False))


def call_with_retry(
    fn: Callable[[], Any],
    policy: RetryPolicy,
    *,
    sleep: Callable[[float], None] = time.sleep,
    on_retry: Callable[[int, BaseException], None] | None = None,
) -> tuple[Any, int]:
    """Call ``fn``, retrying transient failures per ``policy``.

    Returns ``(result, attempts)`` where ``attempts`` counts calls made
    (1 for a first-try success).  Non-transient exceptions, and the
    final transient one once the budget is spent, propagate unchanged.
    """
    attempt = 0
    while True:
        attempt += 1
        try:
            return fn(), attempt
        except (KeyboardInterrupt, SystemExit):
            raise
        except BaseException as exc:
            retries_left = policy.retries - (attempt - 1)
            if retries_left <= 0 or not is_transient(exc):
                raise
            if on_retry is not None:
                on_retry(attempt, exc)
            sleep(policy.delay(attempt))


@contextmanager
def watchdog(
    seconds: float, *, experiment_id: str | None = None
) -> Iterator[None]:
    """Raise :class:`ExperimentTimeout` if the block runs too long.

    Implemented with ``SIGALRM``/``setitimer``, which only works on the
    main thread of a Unix process; anywhere else (worker threads,
    platforms without ``SIGALRM``) the watchdog degrades to a no-op
    rather than breaking the run — the ``timeout`` fault mode covers
    testing on those paths.  ``seconds <= 0`` disables it explicitly.
    """
    if seconds <= 0:
        yield
        return
    if (
        not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return

    def _fire(signum, frame):
        raise ExperimentTimeout(
            f"experiment exceeded watchdog timeout of {seconds:g}s",
            timeout_s=seconds,
            experiment_id=experiment_id,
        )

    previous = signal.signal(signal.SIGALRM, _fire)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)
