"""Supervised worker pools: crash recovery, stall detection, quarantine.

:class:`~concurrent.futures.ProcessPoolExecutor` has a brutal failure
mode: one worker dying (segfault, OOM kill, ``os._exit``) breaks the
whole pool, every in-flight future raises ``BrokenProcessPool``, and the
executor refuses further work.  Before this module the parallel campaign
path swallowed that as a ``None`` result — the traceback vanished, the
pool stayed broken, and every experiment still in flight was lost.

:class:`PoolSupervisor` wraps the executor in a supervision loop:

* **Crash detection and recovery.**  When the pool breaks, the
  supervisor drains the doomed futures, attributes the crash to the
  job(s) that had actually *started* (workers write a heartbeat file at
  task start, so queued-but-unstarted jobs are requeued without
  penalty), rebuilds the pool, and resubmits every orphaned job.
* **Poison-job quarantine.**  A job whose worker dies
  ``max_worker_crashes`` times is reported as *quarantined* instead of
  being resubmitted forever — one reliably-crashing experiment cannot
  sink the campaign, and the bound also caps total pool rebuilds (every
  break charges at least one job).
* **Stall detection.**  Workers touch their heartbeat file every
  ``heartbeat_interval_s``; if a started job's heartbeat goes stale for
  longer than ``stall_timeout_s`` the supervisor SIGKILLs the recorded
  worker pid.  The kill surfaces as a pool break, so recovery and
  quarantine reuse the crash path — a wedged worker costs one stall
  timeout, not the campaign.
* **Backpressure.**  At most ``window`` jobs are in flight at once
  (the campaign driver uses ~2x the worker count), so a
  million-experiment campaign holds a bounded set of futures and
  pending results instead of materialising every future up front.

The supervisor is deliberately policy-free about *what* a job outcome
means: it reports terminal outcomes (``ok`` / ``failed`` /
``quarantined``) and per-crash notifications through callbacks, and the
campaign layer (:mod:`repro.resilience.parallel`) turns those into
manifest records, fault-budget accounting, and narration.
"""

from __future__ import annotations

import os
import shutil
import signal
import tempfile
import threading
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterator

#: Exit code a worker uses when an injected ``worker.crash`` fires, and
#: the stall backstop uses when a stalled worker gives up waiting to be
#: killed.  Chosen to be recognisable in ``wait()`` status decoding.
WORKER_CRASH_EXIT = 113

#: How long an injected ``worker.stall`` sleeps (heartbeats suppressed)
#: before exiting on its own.  The parent's stall detector is expected to
#: SIGKILL the worker long before this; the backstop only bounds test and
#: CI hangs when stall detection is disabled.
STALL_BACKSTOP_S = 30.0


@dataclass(frozen=True)
class SupervisorPolicy:
    """Tunables for one supervised pool."""

    jobs: int = 1
    #: Worker deaths one job may cause before it is quarantined.
    max_worker_crashes: int = 2
    #: Heartbeat staleness that declares a started job stalled; 0
    #: disables stall detection (crash recovery still works).
    stall_timeout_s: float = 0.0

    @property
    def heartbeat_interval_s(self) -> float:
        """How often workers touch their heartbeat file (and how often
        the parent scans): a quarter of the stall timeout, clamped."""
        if self.stall_timeout_s <= 0:
            return 0.0
        return min(1.0, max(0.05, self.stall_timeout_s / 4))

    @property
    def window(self) -> int:
        """Default in-flight bound: ~2x the worker count."""
        return max(2, 2 * self.jobs)


@dataclass
class SupervisedJob:
    """One unit of work under supervision.

    ``index`` is the caller's plan-order position (used for heartbeat
    file naming and for the caller's reorder buffer); ``meta`` is free
    space for the caller (the campaign layer stashes the fault specs it
    shipped with the latest attempt there).
    """

    index: int
    experiment_id: str
    attempts: int = 0
    crashes: int = 0
    stall_killed: bool = False
    meta: dict[str, Any] = field(default_factory=dict)

    @property
    def token(self) -> str:
        return str(self.index)


# ----------------------------------------------------------------------
# Worker-side heartbeat protocol
# ----------------------------------------------------------------------
#: The heartbeat active in this worker process, if any; an injected
#: ``worker.stall`` suppresses it via :func:`suppress_heartbeat`.
_current_heartbeat: "WorkerHeartbeat | None" = None


class WorkerHeartbeat:
    """Worker half of the liveness protocol.

    On ``start()`` the worker writes ``<dir>/<token>.hb`` containing its
    pid — the supervisor reads existence as "this job started" (crash
    attribution) and the pid as the kill target for stalls.  When an
    interval is configured, a daemon thread touches the file until
    ``stop()`` (or until suppressed by an injected stall).
    """

    def __init__(
        self,
        spec: dict[str, Any] | None,
        on_beat: Callable[[], None] | None = None,
    ) -> None:
        self._path: Path | None = None
        self._interval = 0.0
        self._on_beat = on_beat
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        if spec:
            self._path = Path(spec["dir"]) / f"{spec['token']}.hb"
            self._interval = float(spec.get("interval", 0.0))

    def start(self) -> None:
        global _current_heartbeat
        if self._path is None:
            return
        try:
            self._path.write_text(str(os.getpid()), encoding="utf-8")
        except OSError:
            self._path = None
            return
        _current_heartbeat = self
        if self._interval > 0:
            self._thread = threading.Thread(
                target=self._beat, name="repro-heartbeat", daemon=True
            )
            self._thread.start()

    def _beat(self) -> None:
        while not self._stop.wait(self._interval):
            if self._path is None:
                return
            try:
                self._path.touch()
            except OSError:
                return
            if self._on_beat is not None:
                self._on_beat()

    def suppress(self) -> None:
        """Stop beating without removing the file: the parent sees the
        heartbeat go stale, exactly like a truly wedged worker."""
        self._stop.set()

    def stop(self) -> None:
        """Normal task completion: stop beating and remove the file."""
        global _current_heartbeat
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=1.0)
        if self._path is not None:
            try:
                self._path.unlink(missing_ok=True)
            except OSError:
                pass
        if _current_heartbeat is self:
            _current_heartbeat = None


def suppress_heartbeat() -> None:
    """Called by an injected ``worker.stall``: make this worker look
    wedged to the supervisor without actually dying."""
    if _current_heartbeat is not None:
        _current_heartbeat.suppress()


@contextmanager
def worker_heartbeat(
    payload: dict[str, Any], on_beat: Callable[[], None] | None = None
) -> Iterator[None]:
    """Run a supervised task under the heartbeat protocol.

    Workers wrap their task body in this; payloads dispatched outside a
    supervisor (no ``supervise`` key) make it a no-op.
    """
    heartbeat = WorkerHeartbeat(payload.get("supervise"), on_beat=on_beat)
    heartbeat.start()
    try:
        yield
    finally:
        heartbeat.stop()


# ----------------------------------------------------------------------
# The supervisor proper
# ----------------------------------------------------------------------
class PoolSupervisor:
    """Owns a worker pool and keeps it alive across worker deaths.

    ``worker_fn`` is the picklable callable executed in workers; it must
    honour the heartbeat protocol (wrap its body in
    :func:`worker_heartbeat`).  Outcomes are delivered through
    callbacks passed to :meth:`run`; the supervisor itself never
    interprets results.
    """

    def __init__(
        self,
        worker_fn: Callable[[dict[str, Any]], Any],
        policy: SupervisorPolicy,
        mp_context: Any = None,
        on_crash: Callable[[SupervisedJob, str], None] | None = None,
        hb_dir: Path | None = None,
    ) -> None:
        self.worker_fn = worker_fn
        self.policy = policy
        self._mp_context = mp_context
        self._on_crash = on_crash or (lambda job, kind: None)
        self._pool: ProcessPoolExecutor | None = None
        # Heartbeats live in the run directory when the campaign
        # persists (``hb_dir``): a kill -9 mid-campaign then leaves
        # auditable stale ``.hb`` files for ``repro-doctor``, instead
        # of an anonymous tmpdir nobody can associate with the run.
        if hb_dir is not None:
            hb_dir.mkdir(parents=True, exist_ok=True)
            self._hb_dir = hb_dir
        else:
            self._hb_dir = Path(tempfile.mkdtemp(prefix="repro-supervise-"))
        #: Lifetime counters, exported into campaign metrics.
        self.crashes = 0
        self.stalls = 0
        self.rebuilds = 0
        self.quarantined = 0
        #: High-water mark of concurrently in-flight jobs (window proof).
        self.max_inflight = 0

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------
    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.policy.jobs, mp_context=self._mp_context
            )
        return self._pool

    def _rebuild_pool(self) -> None:
        """Discard a broken executor and start a fresh one."""
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
        self._pool = None
        self.rebuilds += 1
        self._ensure_pool()

    def shutdown(self, wait_for_workers: bool = True) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=wait_for_workers, cancel_futures=True)
            self._pool = None
        shutil.rmtree(self._hb_dir, ignore_errors=True)

    # ------------------------------------------------------------------
    # Heartbeat bookkeeping (parent side)
    # ------------------------------------------------------------------
    def _hb_path(self, job: SupervisedJob) -> Path:
        return self._hb_dir / f"{job.token}.hb"

    def _started(self, job: SupervisedJob) -> bool:
        return self._hb_path(job).exists()

    def _clear_heartbeat(self, job: SupervisedJob) -> None:
        try:
            self._hb_path(job).unlink(missing_ok=True)
        except OSError:
            pass

    def _scan_stalls(self, inflight: dict[Future, SupervisedJob]) -> None:
        """SIGKILL workers whose heartbeat went stale.

        The kill breaks the pool; the crash path then attributes the
        break to the killed job (``stall_killed`` marks the kind).
        """
        timeout = self.policy.stall_timeout_s
        if timeout <= 0:
            return
        now = time.time()
        for job in inflight.values():
            if job.stall_killed:
                continue
            path = self._hb_path(job)
            try:
                stat = path.stat()
            except OSError:
                continue  # not started (or already cleaned up)
            if now - stat.st_mtime <= timeout:
                continue
            try:
                pid = int(path.read_text(encoding="utf-8").strip())
            except (OSError, ValueError):
                continue
            job.stall_killed = True
            self.stalls += 1
            try:
                os.kill(pid, signal.SIGKILL)
            except (OSError, ProcessLookupError):
                pass  # already dead; the break is in flight anyway

    # ------------------------------------------------------------------
    # Supervised execution
    # ------------------------------------------------------------------
    def run(
        self,
        jobs: list[SupervisedJob],
        make_payload: Callable[[SupervisedJob], dict[str, Any]],
        on_outcome: Callable[[SupervisedJob, str, Any], None],
        window: int | None = None,
        should_abort: Callable[[], bool] | None = None,
    ) -> None:
        """Run ``jobs`` to terminal outcomes under supervision.

        ``make_payload`` is called for every submission *attempt* (so
        the campaign layer can recompute live fault budgets after a
        crash).  ``on_outcome(job, kind, value)`` fires exactly once per
        job in completion order with ``kind`` one of:

        * ``"ok"`` — ``value`` is the worker's return value;
        * ``"failed"`` — the task raised (or its result could not be
          returned) without killing the worker; ``value`` is the
          exception, traceback intact;
        * ``"quarantined"`` — the job killed the pool
          ``max_worker_crashes`` times; ``value`` is ``"stall"`` or
          ``"crash"``.

        ``should_abort`` is polled between dispatches; when it returns
        true the supervisor stops submitting and abandons in-flight work
        (the campaign layer uses it for fail-fast, the circuit breaker,
        and interrupts).
        """
        window = window if window is not None else self.policy.window
        should_abort = should_abort or (lambda: False)
        queue: deque[SupervisedJob] = deque(jobs)
        requeue: deque[SupervisedJob] = deque()
        inflight: dict[Future, SupervisedJob] = {}
        interval = self.policy.heartbeat_interval_s

        def submit(job: SupervisedJob) -> bool:
            job.attempts += 1
            self._clear_heartbeat(job)
            payload = make_payload(job)
            payload["supervise"] = {
                "dir": str(self._hb_dir),
                "token": job.token,
                "interval": interval,
            }
            try:
                future = self._ensure_pool().submit(self.worker_fn, payload)
            except (BrokenProcessPool, RuntimeError):
                # Pool broke between our last drain and this submit;
                # rebuild and let the caller's attempt stand un-counted.
                job.attempts -= 1
                requeue.appendleft(job)
                self._rebuild_pool()
                return False
            inflight[future] = job
            self.max_inflight = max(self.max_inflight, len(inflight))
            return True

        def handle_break(first_casualties: list[SupervisedJob]) -> None:
            """The pool broke: drain it, attribute, requeue, rebuild."""
            casualties = list(first_casualties)
            # Every other in-flight future is doomed too; collect them.
            for future, job in list(inflight.items()):
                del inflight[future]
                try:
                    result = future.result()
                except BrokenProcessPool:
                    casualties.append(job)
                except BaseException as exc:  # noqa: B036 — report, don't die
                    # Completed with a real exception before the break.
                    self._clear_heartbeat(job)
                    on_outcome(job, "failed", exc)
                else:
                    # Completed with a real result before the break.
                    self._clear_heartbeat(job)
                    on_outcome(job, "ok", result)
            started = [job for job in casualties if self._started(job)]
            # With no heartbeat evidence at all, blame everyone rather
            # than requeueing blindly forever (a worker that dies before
            # its first heartbeat write must still be chargeable).
            culprits = started if started else list(casualties)
            for job in casualties:
                self._clear_heartbeat(job)
                if job not in culprits:
                    requeue.append(job)
                    continue
                job.crashes += 1
                self.crashes += 1
                kind = "stall" if job.stall_killed else "crash"
                job.stall_killed = False
                self._on_crash(job, kind)
                if job.crashes >= self.policy.max_worker_crashes:
                    self.quarantined += 1
                    on_outcome(job, "quarantined", kind)
                else:
                    requeue.append(job)
            # Plan-order dispatch for whatever survived.
            ordered = sorted(requeue, key=lambda job: job.index)
            requeue.clear()
            requeue.extend(ordered)
            self._rebuild_pool()

        try:
            while queue or requeue or inflight:
                if should_abort():
                    for future in inflight:
                        future.cancel()
                    return
                while (requeue or queue) and len(inflight) < window:
                    submit(requeue.popleft() if requeue else queue.popleft())
                if not inflight:
                    continue
                done, _ = wait(
                    set(inflight),
                    timeout=interval if interval > 0 else None,
                    return_when=FIRST_COMPLETED,
                )
                if not done:
                    self._scan_stalls(inflight)
                    continue
                broken: list[SupervisedJob] = []
                for future in done:
                    job = inflight.pop(future)
                    try:
                        result = future.result()
                    except BrokenProcessPool:
                        broken.append(job)
                    except BaseException as exc:  # noqa: B036 — report, don't die
                        self._clear_heartbeat(job)
                        on_outcome(job, "failed", exc)
                    else:
                        self._clear_heartbeat(job)
                        on_outcome(job, "ok", result)
                if broken:
                    handle_break(broken)
        finally:
            # Leftover heartbeat files from abandoned jobs are harmless
            # (the directory is removed on shutdown) but tidy anyway.
            for job in list(queue) + list(requeue):
                self._clear_heartbeat(job)
