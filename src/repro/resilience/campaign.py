"""The durable campaign driver behind ``repro-experiments``.

Runs a list of experiments with the full resilience stack composed
around each one:

* an ``exp.before`` fault point (so tests and ``--inject-fault`` can
  target a specific experiment);
* a watchdog timeout around the attempt;
* bounded retry-with-backoff for transient failures;
* graceful degradation — a failing experiment is recorded in the run
  manifest with its classified error and the batch continues;
* atomic checkpointing after every experiment, so SIGINT (or a crash)
  at any instant leaves a resumable ``runs/<run-id>/manifest.json``.

``--resume <run-id>`` replays the stored rendering of every completed
experiment byte-for-byte (the simulator is deterministic, so stored and
recomputed tables are identical) and runs only what is missing.

``--jobs N`` shards the remaining experiments across N worker processes
(see :mod:`repro.resilience.parallel`); results merge back in plan
order, so manifests, summaries, retries, faults, and resume behave
exactly as in a serial run.
"""

from __future__ import annotations

import os
import signal
import sys
import threading
import time
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field
from typing import Callable, Iterator, TextIO

from repro.exp.registry import run_experiment
from repro.obs.config import telemetry_scope
from repro.obs.exporters import RunTelemetryWriter
from repro.obs.progress import CampaignReporter
from repro.obs.telemetry import DISABLED, Telemetry
from repro.resilience.checkpoint import ExperimentRecord, RunManifest, RunStore
from repro.resilience.errors import (
    CheckpointError,
    as_experiment_error,
    classify_error,
)
from repro.resilience.faults import FAULTS, fault_point
from repro.resilience.retry import RetryPolicy, call_with_retry, watchdog
from repro.util.tables import TextTable

EXIT_OK = 0
EXIT_FAILED = 1
EXIT_INTERRUPTED = 130  # 128 + SIGINT, the shell convention

RULE = "=" * 72


@dataclass
class CampaignConfig:
    """Everything the CLI hands the driver for one invocation."""

    ids: list[str]
    quick: bool = False
    timeout_s: float = 0.0
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    runs_dir: str = "runs"
    run_id: str | None = None
    resume: str | None = None
    fail_fast: bool = False
    save: bool = True
    #: Runtime-verification oracles for every simulation in the campaign:
    #: ``True``/``False`` flip the process-wide switch for the campaign's
    #: duration; ``None`` leaves whatever the process already chose.
    verify: bool | None = None
    #: Narration level: 0 default, 1 ``--verbose`` (adds DEBUG detail),
    #: -1 ``--quiet`` (errors and the summary only).
    verbosity: int = 0
    #: Telemetry (``repro.obs``): ``True``/``False`` force it on or off;
    #: ``None`` enables it exactly when run artifacts are being saved —
    #: the exporters need a run directory to write into.
    telemetry: bool | None = None
    #: Locality profiling (``--profile``): attach a
    #: :class:`repro.obs.profile.LocalityProfiler` to every simulation
    #: the experiment runs and persist the merged payload as a
    #: ``<id>.profile.json`` artifact beside the result file.  Off by
    #: default — with no sidecar attached the cache kernel runs its
    #: uninstrumented ``access_data``, so disabled profiling is free.
    profile: bool = False
    #: Worker processes for the campaign (``--jobs``): 1 runs everything
    #: in-process; N > 1 shards the remaining experiments across N
    #: workers via :mod:`repro.resilience.parallel`, with results merged
    #: back in plan order so manifests and summaries match serial runs.
    #: On a host with a single effective CPU the pool cannot overlap any
    #: compute and its process overhead makes the campaign *slower* than
    #: serial, so ``jobs > 1`` auto-degrades to the serial loop there
    #: (narrated by the reporter; manifests are identical either way).
    jobs: int = 1
    #: Keep the worker pool even when the host has a single effective
    #: CPU (suppresses the auto-degrade above).  The chaos/recovery
    #: machinery is only exercised by a real pool, so supervision tests
    #: and crash drills set this.
    force_parallel: bool = False
    #: Content-addressed trace store directory (``--trace-store``): every
    #: simulation in the campaign first consults the store and replays a
    #: stored reference stream when one matches; misses run live and
    #: populate the store.  ``None`` disables the store entirely.
    trace_store: str | None = None
    #: Campaign circuit breaker (``--max-failures``): stop dispatching
    #: once this many experiments ended not-passed this session; later
    #: experiments stay pending.  0 disables the breaker.
    max_failures: int = 0
    #: Worker deaths one experiment may cause before the supervised
    #: executor quarantines it (recorded as a ``worker-crash`` error and
    #: skipped; ``--resume`` retries it).  Only meaningful with --jobs.
    max_worker_crashes: int = 2
    #: Heartbeat staleness (seconds) after which a worker is declared
    #: stalled and SIGKILLed by the supervisor; 0 disables stall
    #: detection.  Only meaningful with --jobs.
    stall_timeout_s: float = 0.0


def _effective_cpus() -> int:
    """CPUs actually available to this process (affinity-aware).

    Module-level so tests on constrained hosts can patch it; the
    auto-degrade decision in :func:`_run_campaign` is its only caller.
    """
    getter = getattr(os, "sched_getaffinity", None)
    if getter is not None:
        try:
            return len(getter(0)) or 1
        except OSError:
            pass
    return os.cpu_count() or 1


@contextmanager
def _sigint_raises() -> Iterator[None]:
    """Ensure SIGINT raises ``KeyboardInterrupt`` even if a caller
    replaced the default handler; no-op off the main thread."""
    if threading.current_thread() is not threading.main_thread():
        yield
        return
    previous = signal.signal(signal.SIGINT, signal.default_int_handler)
    try:
        yield
    finally:
        signal.signal(signal.SIGINT, previous)


def _prepare_manifest(
    config: CampaignConfig, store: RunStore, reporter: CampaignReporter
) -> RunManifest:
    """Create a fresh manifest, or reload and replay a resumed one."""
    if config.resume:
        manifest = store.load(config.resume)
        if manifest.salvaged:
            # The manifest on disk was torn, stale, or corrupt and was
            # rebuilt from the journal and result files; heal it now so
            # the rest of the resume runs against a clean store.
            reporter.error(
                f"Manifest for run {manifest.run_id} was damaged; salvaged "
                f"{len(manifest.records)} recorded experiment(s) from the "
                "journal and result files."
            )
            for note in manifest.salvage_notes:
                reporter.detail(f"  salvage: {note}")
            store.save(manifest)
        if manifest.quick != config.quick:
            raise CheckpointError(
                f"run {manifest.run_id!r} was recorded with "
                f"quick={manifest.quick}; resume with the same flag so "
                "results stay comparable",
                path=str(store.manifest_path(manifest.run_id)),
            )
        if config.ids and list(config.ids) != manifest.ids:
            raise CheckpointError(
                f"run {manifest.run_id!r} planned {', '.join(manifest.ids)}; "
                "resume without ids (or the same ids) to finish that plan",
                path=str(store.manifest_path(manifest.run_id)),
            )
        manifest.interrupted = False
        done = [i for i in manifest.ids if (r := manifest.records.get(i)) and r.is_final]
        reporter.info(
            f"Resuming run {manifest.run_id}: {len(done)} of "
            f"{len(manifest.ids)} experiments already recorded."
        )
        for experiment_id in done:
            record = manifest.records[experiment_id]
            reporter.info(f"\n{RULE}")
            reporter.info(record.rendered)
            reporter.info(f"({experiment_id} replayed from checkpoint)")
        return manifest
    if config.save:
        manifest = store.new_run(config.ids, config.quick, config.run_id)
        reporter.info(
            f"Run {manifest.run_id} -> {store.run_dir(manifest.run_id)}"
        )
        return manifest
    return RunManifest(
        run_id=config.run_id or "ephemeral", ids=list(config.ids), quick=config.quick
    )


def _run_one(
    config: CampaignConfig,
    experiment_id: str,
    runner: Callable,
    reporter: CampaignReporter,
    obs: Telemetry = DISABLED,
) -> ExperimentRecord:
    """One experiment through fault point, watchdog, and retry."""
    started = time.perf_counter()
    attempts = 1

    def _on_retry(attempt: int, exc: BaseException) -> None:
        nonlocal attempts
        attempts = attempt + 1
        reporter.info(
            f"  retrying {experiment_id} (attempt {attempt + 1}) after "
            f"{classify_error(exc)} error: {exc}"
        )
        if obs.enabled:
            obs.metrics.counter("campaign.retries").inc()
            obs.instant(
                "campaign.retry",
                experiment=experiment_id,
                attempt=attempt + 1,
                error=classify_error(exc),
            )

    collector = None
    profile_scope = nullcontext()
    if config.profile:
        from repro.obs.profile import ProfileCollector, collector_scope

        collector = ProfileCollector()
        profile_scope = collector_scope(collector)

    def _attempt():
        fault_point("exp.before", experiment_id=experiment_id)
        if collector is not None:
            # A retried attempt re-simulates from scratch; its profile
            # must not accumulate the aborted attempt's counts.
            collector.reset()
        return runner(experiment_id, quick=config.quick)

    try:
        with profile_scope, watchdog(
            config.timeout_s, experiment_id=experiment_id
        ):
            result, attempts = call_with_retry(
                _attempt, config.retry, on_retry=_on_retry
            )
        record = ExperimentRecord.from_result(
            result, time.perf_counter() - started, attempts
        )
        if collector is not None:
            record.profile = collector.payload(experiment_id)
        return record
    except (KeyboardInterrupt, SystemExit):
        raise
    except BaseException as exc:
        structured = as_experiment_error(exc, experiment_id)
        return ExperimentRecord.from_error(
            experiment_id, structured, time.perf_counter() - started, attempts
        )


def _emit_record(
    config: CampaignConfig,
    store: RunStore,
    manifest: RunManifest,
    reporter: CampaignReporter,
    obs: Telemetry,
    writer: RunTelemetryWriter | None,
    persist: bool,
    record: ExperimentRecord,
    index: int,
    total: int,
) -> None:
    """Checkpoint and narrate one finished experiment.

    Shared by the serial loop and the parallel executor (which calls it
    in plan order as worker results merge), so checkpoint timing,
    narration, and progress lines are identical either way.
    """
    if persist:
        checkpoint_started = time.perf_counter()
        store.record(manifest, record)
        checkpoint_s = time.perf_counter() - checkpoint_started
        if obs.enabled:
            obs.metrics.histogram("checkpoint.write_seconds").observe(
                checkpoint_s
            )
        reporter.detail(
            f"checkpoint {record.experiment_id} written in "
            f"{checkpoint_s * 1000:.1f}ms"
        )
        if record.profile is not None:
            from repro.obs.profile import profile_artifact_name

            name = profile_artifact_name(record.experiment_id)
            store.record_artifact(manifest, name, record.profile)
            reporter.detail(f"profile artifact {name}.json written")
    else:
        manifest.records[record.experiment_id] = record
    if writer is not None:
        writer.flush()
        reporter.detail(
            f"telemetry flushed: {obs.bus.drained} events so far"
        )
    reporter.info(f"\n{RULE}")
    if record.status == "error":
        error = record.error or {}
        reporter.info(
            f"{record.experiment_id} ERROR [{error.get('category')}] "
            f"after {record.attempts} attempt(s): "
            f"{error.get('message')}"
        )
        reporter.info("(continuing with remaining experiments)")
    else:
        reporter.info(record.rendered)
        reporter.info(
            f"({record.experiment_id} completed in {record.elapsed_s:.1f}s)"
        )
    reporter.finish_experiment(
        record.experiment_id, record.status, record.elapsed_s, index, total
    )


def _summary_table(manifest: RunManifest) -> TextTable:
    table = TextTable(
        ["Experiment", "Status", "Checks", "Time(s)", "Attempts", "Error"],
        title="Campaign summary",
    )
    for experiment_id in manifest.ids:
        record = manifest.records.get(experiment_id)
        if record is None:
            table.add_row([experiment_id, "pending", "-", "-", "-", ""])
            continue
        passed = sum(1 for c in record.checks if c.get("passed"))
        checks = f"{passed}/{len(record.checks)}" if record.checks else "-"
        error = ""
        if record.error is not None:
            error = f"[{record.error['category']}] {record.error['message']}"
            if len(error) > 60:
                error = error[:57] + "..."
        table.add_row(
            [
                experiment_id,
                record.status,
                checks,
                f"{record.elapsed_s:.1f}",
                record.attempts,
                error,
            ]
        )
    return table


def run_campaign(
    config: CampaignConfig,
    out: TextIO | None = None,
    err: TextIO | None = None,
    runner: Callable = run_experiment,
) -> int:
    """Run (or resume) a campaign; returns the process exit code."""
    # Resolve the streams at call time so output capture (pytest capsys,
    # redirected stdout) sees the campaign's reporting.
    out = sys.stdout if out is None else out
    err = sys.stderr if err is None else err
    with CampaignReporter(out, err, config.verbosity) as reporter:
        return _run_campaign(config, reporter, runner)


def _run_campaign(
    config: CampaignConfig, reporter: CampaignReporter, runner: Callable
) -> int:
    store = RunStore(config.runs_dir)
    manifest = _prepare_manifest(config, store, reporter)
    persist = config.save or config.resume is not None

    obs_on = config.telemetry if config.telemetry is not None else persist
    obs = Telemetry() if obs_on else DISABLED
    writer = (
        RunTelemetryWriter(store.run_dir(manifest.run_id), obs)
        if obs_on and persist
        else None
    )
    if writer is not None:
        writer.metadata = {"run_id": manifest.run_id, "quick": config.quick}

    if config.verify is None:
        verify_scope = nullcontext()
    else:
        from repro.verify.config import verification

        verify_scope = verification(config.verify)
    from repro.trace.store import open_trace_store, trace_store_scope

    traces_scope = trace_store_scope(open_trace_store(config.trace_store))
    interrupted = False
    total = len(manifest.ids)
    jobs = config.jobs
    if jobs > 1 and not config.force_parallel:
        cpus = _effective_cpus()
        if cpus <= 1:
            # A pool on one CPU cannot overlap compute; its process
            # overhead makes the campaign strictly slower than serial
            # (the benchmark records the regression).  Degrade silently
            # in output terms: results and manifests are identical.
            reporter.jobs_downgrade(jobs, cpus)
            if obs.enabled:
                obs.instant(
                    "campaign.jobs_downgrade", requested=jobs, cpus=cpus
                )
            jobs = 1
    try:
        with _sigint_raises(), verify_scope, telemetry_scope(obs), traces_scope:
            remaining = manifest.remaining()
            done_before = total - len(remaining)
            if jobs > 1 and len(remaining) > 1:
                from repro.resilience.parallel import run_parallel

                interrupted = run_parallel(
                    config,
                    manifest,
                    store,
                    reporter,
                    runner,
                    obs,
                    writer,
                    persist,
                )
            else:
                failures = 0
                for offset, experiment_id in enumerate(remaining):
                    index = done_before + offset + 1
                    reporter.start_experiment(experiment_id, index, total)
                    if obs.enabled:
                        obs.bus.begin(f"exp.{experiment_id}", quick=config.quick)
                    try:
                        record = _run_one(
                            config, experiment_id, runner, reporter, obs
                        )
                    except KeyboardInterrupt:
                        if obs.enabled:
                            obs.bus.end(status="interrupted")
                        interrupted = True
                        manifest.interrupted = True
                        if persist:
                            store.save(manifest)
                        break
                    if obs.enabled:
                        obs.bus.end(status=record.status, attempts=record.attempts)
                    _emit_record(
                        config,
                        store,
                        manifest,
                        reporter,
                        obs,
                        writer,
                        persist,
                        record,
                        index,
                        total,
                    )
                    if record.status != "passed":
                        failures += 1
                        if config.fail_fast:
                            break
                        if config.max_failures and failures >= config.max_failures:
                            # Circuit breaker: too much is going wrong to
                            # keep burning compute; the rest stay pending.
                            reporter.circuit_breaker(failures, config.max_failures)
                            if obs.enabled:
                                obs.instant(
                                    "campaign.circuit_breaker", failures=failures
                                )
                            break
    finally:
        if writer is not None:
            obs.metrics.gauge("faults.fired_total").set(FAULTS.fired_total)
            for status, count in manifest.counts().items():
                obs.metrics.gauge(f"campaign.{status}").set(count)
            writer.finalize()

    reporter.always(f"\n{RULE}")
    reporter.always(_summary_table(manifest).render())
    counts = manifest.counts()
    line = ", ".join(f"{v} {k}" for k, v in counts.items() if v)
    if interrupted:
        reporter.error(
            f"\nInterrupted — {line}. Manifest flushed; resume with:\n"
            f"  repro-experiments --runs-dir {config.runs_dir} "
            f"--resume {manifest.run_id}"
            + (" --quick" if config.quick else "")
        )
        return EXIT_INTERRUPTED
    if counts["failed"] or counts["error"] or counts["pending"]:
        by_status = {
            status: [
                i
                for i in manifest.ids
                if (r := manifest.records.get(i)) and r.status == status
            ]
            for status in ("failed", "error")
        }
        if by_status["failed"]:
            reporter.error(
                f"\nShape checks FAILED in: {', '.join(by_status['failed'])}"
            )
        if by_status["error"]:
            reporter.error(f"Errors in: {', '.join(by_status['error'])}")
        if counts["pending"]:
            reporter.error(f"Not run: {counts['pending']} experiment(s).")
        return EXIT_FAILED
    reporter.always("\nAll shape checks passed.")
    return EXIT_OK
