"""Append-only, per-line-checksummed journal beside each run manifest.

``runs/<run-id>/records.jsonl`` is the write-ahead log of the run
store.  ``manifest.json`` is a convenience snapshot — readable at a
glance, cheap to load — but a snapshot is only as durable as its last
atomic rename.  The journal is the recovery backbone behind it:

* every entry is one JSON line carrying its own sha256, so corruption
  is *detected per line* — one flipped byte loses one line, never the
  file;
* entries are append-only, so a crash (or ``kill -9``) at any instant
  leaves at worst a torn final line, which replay recognises and skips;
* record entries are appended *before* the manifest is flushed, so a
  manifest that dies between ``record()`` and ``save()`` can be rebuilt
  from the journal instead of losing the experiment;
* after each successful manifest flush a ``flush`` entry records the
  sha256 of the manifest bytes just published, so a *silently* corrupt
  manifest (valid JSON, flipped content) is detectable too.

Entry kinds
-----------
``plan``
    The run header: version, run id, planned ids, quick flag,
    creation timestamp.  Written once when the run is created.
``record``
    One experiment's outcome (``ExperimentRecord.to_dict()``),
    appended before the manifest flush that will contain it.
``flush``
    ``{"sha256": <digest of manifest.json bytes>}`` appended after each
    successful manifest publish.
``artifact``
    ``{"name": <file stem>, "sha256": <digest of the artifact bytes>}``
    appended after a non-result artifact (e.g. an experiment's
    ``<id>.profile.json``) is published, so the doctor can audit it.
    Journal v1 readers older than this kind degrade gracefully: the
    line fails their kind check and is skipped as a bad line, while
    plan/record/flush replay is unaffected.
``trace``
    One stored trace object's index entry (key fields, content digest,
    file sha256, stream sizes), appended to the trace store's
    ``index.jsonl`` after the object file is published (see
    ``repro.trace.store``).  Same forgiving-degradation story as
    ``artifact`` for older readers.

Replay (:func:`read_journal`) is deliberately forgiving: lines that
fail to parse or whose checksum does not match are reported, not
fatal, and the surviving entries still reconstruct the run.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.resilience.errors import CheckpointError, FaultInjected
from repro.resilience.faults import fault_point

#: Journal file name inside a run directory.
JOURNAL_NAME = "records.jsonl"

#: Bumped when the line format changes; recorded in every plan entry.
JOURNAL_VERSION = 1

ENTRY_KINDS = ("plan", "record", "flush", "artifact", "trace")


def _canonical(payload: dict[str, Any]) -> str:
    """The canonical serialization the checksum is computed over."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def entry_checksum(payload: dict[str, Any]) -> str:
    return hashlib.sha256(_canonical(payload).encode("utf-8")).hexdigest()


def file_checksum(data: bytes) -> str:
    """Digest of a whole file's bytes (used for manifest flush entries)."""
    return hashlib.sha256(data).hexdigest()


def format_entry(kind: str, payload: dict[str, Any]) -> str:
    """One journal line (newline-terminated) for ``kind``/``payload``."""
    if kind not in ENTRY_KINDS:
        raise ValueError(f"unknown journal entry kind {kind!r}")
    line = {"kind": kind, "payload": payload, "sha256": entry_checksum(payload)}
    return json.dumps(line, sort_keys=True, separators=(",", ":")) + "\n"


def append_entry(path: Path, kind: str, payload: dict[str, Any]) -> None:
    """Append one checksummed entry, flushed and fsynced.

    Instruments the ``io.enospc``/``io.fsync-fail`` disk fault sites
    (they raise ``OSError``, folded into the ``CheckpointError`` below)
    and ``io.torn-write`` (leaves a torn, checksum-failing final line —
    exactly what a mid-append crash leaves — then raises).
    """
    text = format_entry(kind, payload)
    try:
        with open(path, "a", encoding="utf-8") as handle:
            fault_point("io.enospc", path=str(path))
            try:
                fault_point("io.torn-write", path=str(path))
            except FaultInjected as exc:
                handle.write(text[: max(1, len(text) // 2)])
                handle.flush()
                raise CheckpointError(
                    f"injected torn write appending to {path.name}",
                    path=str(path),
                ) from exc
            handle.write(text)
            handle.flush()
            fault_point("io.fsync-fail", path=str(path))
            os.fsync(handle.fileno())
    except OSError as exc:
        raise CheckpointError(
            f"cannot append to journal {path.name}: {exc}", path=str(path)
        ) from exc


def rewrite(path: Path, entries: list[tuple[str, dict[str, Any]]]) -> None:
    """Replace the journal wholesale (doctor --repair, journal rebuild).

    Temp-file-then-rename like every other store write, so a crash
    mid-rewrite leaves the previous journal intact.
    """
    text = "".join(format_entry(kind, payload) for kind, payload in entries)
    tmp = path.with_name(path.name + ".tmp")
    try:
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except OSError as exc:
        raise CheckpointError(
            f"cannot rewrite journal {path.name}: {exc}", path=str(path)
        ) from exc
    finally:
        tmp.unlink(missing_ok=True)


@dataclass
class BadLine:
    """One journal line that could not be trusted."""

    lineno: int  # 1-based
    reason: str  # "unparseable" | "checksum mismatch" | "malformed entry"
    torn: bool = False  # final line with no trailing newline: a torn append


@dataclass
class JournalReplay:
    """Everything replaying a journal recovered (and failed to)."""

    entries: list[tuple[str, dict[str, Any]]] = field(default_factory=list)
    bad_lines: list[BadLine] = field(default_factory=list)

    @property
    def plan(self) -> dict[str, Any] | None:
        """The run header, if any plan entry survived (last one wins)."""
        plans = [p for kind, p in self.entries if kind == "plan"]
        return plans[-1] if plans else None

    @property
    def records(self) -> dict[str, dict[str, Any]]:
        """Surviving experiment records in append order; later entries
        for the same experiment win (a retried experiment re-journals)."""
        records: dict[str, dict[str, Any]] = {}
        for kind, payload in self.entries:
            if kind == "record" and "experiment_id" in payload:
                records[payload["experiment_id"]] = payload
        return records

    @property
    def artifacts(self) -> dict[str, str]:
        """Journaled artifact digests by name (last entry per name wins,
        matching the re-journal a retried experiment performs)."""
        artifacts: dict[str, str] = {}
        for kind, payload in self.entries:
            if kind == "artifact" and "name" in payload:
                artifacts[payload["name"]] = payload.get("sha256", "")
        return artifacts

    @property
    def traces(self) -> dict[str, dict[str, Any]]:
        """Journaled trace-store index entries by content digest (last
        entry per digest wins — a re-stored object re-journals)."""
        traces: dict[str, dict[str, Any]] = {}
        for kind, payload in self.entries:
            if kind == "trace" and "digest" in payload:
                traces[payload["digest"]] = payload
        return traces

    @property
    def last_flush_digest(self) -> str | None:
        """sha256 the last flush entry recorded for manifest.json."""
        digests = [
            p.get("sha256") for kind, p in self.entries if kind == "flush"
        ]
        return digests[-1] if digests else None

    @property
    def torn_tail(self) -> bool:
        return any(bad.torn for bad in self.bad_lines)

    @property
    def corrupt_lines(self) -> list[BadLine]:
        """Bad lines that are *not* the expected torn tail."""
        return [bad for bad in self.bad_lines if not bad.torn]


def read_journal(path: Path) -> JournalReplay:
    """Replay a journal, skipping (and reporting) untrustworthy lines.

    Never raises on content: a torn tail, flipped bytes, or garbage
    lines degrade into :class:`BadLine` reports while every intact
    entry is recovered.  ``OSError`` (the file cannot be *read* at all)
    still propagates as :class:`CheckpointError` — that is an I/O
    problem, not corruption.
    """
    try:
        data = path.read_text(encoding="utf-8", errors="replace")
    except OSError as exc:
        raise CheckpointError(
            f"cannot read journal {path.name}: {exc}", path=str(path)
        ) from exc
    replay = JournalReplay()
    lines = data.split("\n")
    # A well-formed journal ends with a newline, so the final split
    # element is empty; anything else is a torn trailing append.
    tail_torn = lines and lines[-1] != ""
    if lines and lines[-1] == "":
        lines.pop()
    for lineno, line in enumerate(lines, start=1):
        is_tail = tail_torn and lineno == len(lines)
        if not line.strip():
            continue
        try:
            parsed = json.loads(line)
        except json.JSONDecodeError:
            replay.bad_lines.append(
                BadLine(lineno, "unparseable", torn=is_tail)
            )
            continue
        if not (
            isinstance(parsed, dict)
            and parsed.get("kind") in ENTRY_KINDS
            and isinstance(parsed.get("payload"), dict)
        ):
            replay.bad_lines.append(
                BadLine(lineno, "malformed entry", torn=is_tail)
            )
            continue
        if parsed.get("sha256") != entry_checksum(parsed["payload"]):
            replay.bad_lines.append(
                BadLine(lineno, "checksum mismatch", torn=is_tail)
            )
            continue
        replay.entries.append((parsed["kind"], parsed["payload"]))
    return replay
