"""Structured exception hierarchy for the whole reproduction.

Every failure the experiment stack can hit maps onto one of these types,
each carrying the context a campaign report needs (which experiment,
which machine model, which program version) instead of leaving it buried
in a traceback.  The hierarchy:

``ReproError``
    ├── ``ConfigError``       (also a ``ValueError``) — bad user input
    ├── ``SimulationError``   — a traced program blew up under the simulator
    │       └── ``FaultInjected`` — deterministic injected failure (transient)
    ├── ``VerificationError`` — a runtime-verification oracle found an
    │       │                   invariant violation (see ``repro.verify``)
    │       ├── ``HintError``         (also a ``ValueError``) — bad hint vector
    │       ├── ``ThreadBudgetError`` — a thread proc exceeded its budget
    │       └── ``ThreadProcError``   — a user thread proc raised
    ├── ``ExperimentError``   — an experiment failed outside the simulator
    │       ├── ``ExperimentTimeout`` — the watchdog fired
    │       └── ``WorkerCrashError``  — the worker process running the
    │                                   experiment died (classified
    │                                   ``worker-crash``; see
    │                                   ``repro.resilience.supervisor``)
    └── ``CheckpointError``   — a run manifest could not be read or written
            └── ``StoreCorruptionError`` — run-store bytes are provably
                                  bad (torn/corrupt manifest, checksum
                                  mismatch) and salvage found nothing
                                  to rebuild from (classified
                                  ``corruption``; see ``repro-doctor``)

``ConfigError`` deliberately subclasses ``ValueError`` so the many
call sites (and tests) written against ``ValueError`` keep working while
gaining the structured ``field`` attribute.
"""

from __future__ import annotations

from typing import Any

#: Context keys rendered after the message, in this order.
_CONTEXT_KEYS = (
    "experiment_id",
    "machine",
    "program",
    "site",
    "field",
    "oracle",
    "invariant",
    "level",
    "thread",
    "crashes",
)


class ConfigWarning(UserWarning):
    """A configuration is accepted but deviates from the paper's model
    (e.g. a non-power-of-two block size forcing the division fallback)."""


class ReproError(Exception):
    """Base class for all structured errors in the reproduction.

    Keyword arguments name the context the failure happened in; they are
    stored as attributes and appended to ``str(exc)`` so a log line is
    self-describing.  ``transient`` marks failures worth retrying (the
    retry layer checks it via :func:`repro.resilience.retry.is_transient`).
    """

    def __init__(
        self,
        message: str,
        *,
        experiment_id: str | None = None,
        machine: str | None = None,
        program: str | None = None,
        site: str | None = None,
        field: str | None = None,
        transient: bool = False,
        **extra: Any,
    ) -> None:
        super().__init__(message)
        self.message = message
        self.experiment_id = experiment_id
        self.machine = machine
        self.program = program
        self.site = site
        self.field = field
        self.transient = transient
        self.extra = extra
        # Extra context (oracle, invariant, level, thread, ...) is also
        # exposed as attributes, mirroring the named keyword arguments.
        for key, value in extra.items():
            if not hasattr(self, key):
                setattr(self, key, value)

    def context(self) -> dict[str, Any]:
        """The non-empty context fields, for manifests and reports."""
        context = {
            key: value
            for key in _CONTEXT_KEYS
            if (value := getattr(self, key, None)) is not None
        }
        for key, value in self.extra.items():
            if key not in context and value is not None:
                context[key] = value
        return context

    def __str__(self) -> str:
        context = self.context()
        if not context:
            return self.message
        rendered = ", ".join(f"{k}={v}" for k, v in context.items())
        return f"{self.message} [{rendered}]"


class ConfigError(ReproError, ValueError):
    """Invalid configuration value (machine spec, cache geometry, CLI id).

    ``field`` names the offending parameter.  Subclasses ``ValueError``
    for compatibility with pre-existing ``except ValueError`` call sites.
    """


class SimulationError(ReproError):
    """A traced program raised inside :meth:`Simulator.run`."""


class FaultInjected(SimulationError):
    """A deterministic failure armed by the fault-injection harness.

    Transient by default, so the retry layer exercises its real path
    when the tests arm a fail-once fault.
    """

    def __init__(self, message: str, **context: Any) -> None:
        context.setdefault("transient", True)
        super().__init__(message, **context)


class VerificationError(ReproError):
    """A runtime-verification oracle detected an invariant violation.

    Raised by the ``repro.verify`` oracles (scheduler and cache) and by
    guarded execution.  ``oracle`` names the oracle, ``invariant`` the
    violated claim, ``level``/``thread`` the cache level or thread the
    violation was localised to.
    """


class HintError(VerificationError, ValueError):
    """A thread's scheduling hint vector is malformed.

    Too many hints, a negative or out-of-range address, or a gap in the
    hint ordering.  Guarded execution records these (quarantining the
    thread into the unhinted bin) instead of raising; strict call sites
    raise.  Subclasses ``ValueError`` so generic validation call sites
    keep working.
    """


class ThreadBudgetError(VerificationError):
    """A thread proc exceeded its per-thread execution budget.

    Raised by :class:`repro.verify.guarded.GuardedThreadPackage` when a
    runaway thread proc passes its step/reference budget, naming the
    thread instead of hanging the campaign.
    """


class ThreadProcError(VerificationError):
    """A user thread proc raised; recorded by guarded execution so the
    bin sweep can continue (graceful degradation)."""


class ExperimentError(ReproError):
    """An experiment failed outside the simulator proper."""


class ExperimentTimeout(ExperimentError):
    """The per-experiment watchdog fired (or a timeout fault was armed)."""

    def __init__(self, message: str, *, timeout_s: float | None = None, **context: Any) -> None:
        super().__init__(message, **context)
        self.timeout_s = timeout_s


class WorkerCrashError(ExperimentError):
    """The worker process running an experiment died outright.

    Raised (parent-side) by the supervised campaign executor when a
    worker segfaults, is OOM-killed, exits via an injected
    ``worker.crash``, or is SIGKILLed by the stall detector.  ``crashes``
    counts how many times this experiment killed its worker; a job that
    reaches the quarantine bound is recorded with this error (classified
    ``worker-crash``) and skipped so the campaign can finish.  The
    status is not final: ``--resume`` retries quarantined experiments.
    """

    def __init__(
        self, message: str, *, crashes: int | None = None, **context: Any
    ) -> None:
        super().__init__(message, **context)
        self.crashes = crashes


class CheckpointError(ReproError):
    """A run manifest or result file could not be read or written.

    A *read* failure (``OSError`` underneath) is transient — the disk
    hiccuped, the file may be fine — and is reported as such; it is
    never conflated with corruption (see
    :class:`StoreCorruptionError`).
    """

    def __init__(self, message: str, *, path: str | None = None, **context: Any) -> None:
        super().__init__(message, **context)
        self.path = path


class StoreCorruptionError(CheckpointError):
    """Run-store content is provably damaged and could not be salvaged.

    Raised only after the salvage path (journal replay plus intact
    per-experiment result files) found nothing to rebuild from: a torn
    or corrupt ``manifest.json`` with no surviving journal.  The
    message carries the repair hint (``repro-doctor --repair``);
    classified ``corruption`` so campaign summaries distinguish bad
    bytes from bad I/O.
    """


def classify_error(exc: BaseException) -> str:
    """A stable category label for manifests and summary tables."""
    if isinstance(exc, ExperimentTimeout):
        return "timeout"
    if isinstance(exc, ConfigError):
        return "config"
    if isinstance(exc, FaultInjected):
        return "fault"
    if isinstance(exc, VerificationError):
        return "verification"
    if isinstance(exc, SimulationError):
        return "simulation"
    if isinstance(exc, WorkerCrashError):
        return "worker-crash"
    if isinstance(exc, ExperimentError):
        return "experiment"
    if isinstance(exc, StoreCorruptionError):
        return "corruption"
    if isinstance(exc, CheckpointError):
        return "checkpoint"
    if isinstance(exc, KeyboardInterrupt):
        return "interrupted"
    return "unexpected"


def as_experiment_error(exc: BaseException, experiment_id: str) -> ReproError:
    """Coerce an arbitrary exception into the structured hierarchy.

    Structured errors pass through (gaining the experiment id if they
    lack one); anything else is wrapped in :class:`ExperimentError` with
    the original as ``__cause__``.
    """
    if isinstance(exc, ReproError):
        if exc.experiment_id is None:
            exc.experiment_id = experiment_id
        return exc
    wrapped = ExperimentError(
        f"{type(exc).__name__}: {exc}", experiment_id=experiment_id
    )
    wrapped.__cause__ = exc
    return wrapped
