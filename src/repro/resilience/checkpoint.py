"""Crash-safe run artifacts: manifests, result files, and the journal.

A campaign writes everything it learns under ``runs/<run-id>/``::

    runs/20260806-141503-1234/
        manifest.json      # plan, status and outcome of every experiment
        records.jsonl      # append-only checksummed journal (the WAL)
        table1.json        # one file per completed experiment: rendered
        table2.json        #   table, shape checks, error (if any), timing

Every JSON write is temp-file-then-``os.replace`` into place, so a
crash (or an armed ``checkpoint.write``/``io.*`` fault) at any instant
leaves the previous manifest intact.  On top of that, the store is
*journaled*: each experiment record is appended to ``records.jsonl``
(one sha256-checksummed line) **before** the manifest flush that will
contain it, and each successful flush appends the manifest's digest.
A torn, missing, or silently corrupted ``manifest.json`` is therefore
*salvaged* on load — the run header and records are rebuilt from the
journal and the intact per-experiment result files — instead of
dead-ending the resume.  ``repro-doctor`` audits and repairs the same
state offline (:mod:`repro.resilience.doctor`).

Because the simulator is deterministic, ``--resume <run-id>`` can skip
completed experiments and replay their stored rendering byte-for-byte
while re-running only what is missing — including after a salvage.

Manifest versioning: ``MANIFEST_VERSION`` mismatches from older runs go
through the :data:`MIGRATIONS` chain at load time instead of
hard-failing; only *newer*-than-supported versions are rejected.
"""

from __future__ import annotations

import errno as errno_module
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable

from repro.resilience.errors import (
    CheckpointError,
    FaultInjected,
    ReproError,
    StoreCorruptionError,
    classify_error,
)
from repro.resilience.faults import fault_point
from repro.resilience.journal import (
    JOURNAL_NAME,
    JOURNAL_VERSION,
    JournalReplay,
    append_entry,
    file_checksum,
    read_journal,
)

if TYPE_CHECKING:  # keep this module import-light: no experiment stack
    from repro.exp.base import ExperimentResult

MANIFEST_VERSION = 2

#: Statuses that mean "this experiment ran to a verdict" — resume skips
#: them.  ``error`` is *not* final: a resumed campaign retries it.
FINAL_STATUSES = ("passed", "failed")

#: Files in a run directory that are *not* per-experiment results.
NON_RESULT_FILES = frozenset({"manifest.json", "metrics.json", "trace.json"})


@dataclass
class ExperimentRecord:
    """Outcome of one experiment within one run."""

    experiment_id: str
    status: str  # "passed" | "failed" | "error"
    rendered: str = ""
    checks: list[dict[str, Any]] = field(default_factory=list)
    error: dict[str, Any] | None = None
    elapsed_s: float = 0.0
    attempts: int = 1
    #: The experiment's locality profile (``repro.obs.profile`` payload)
    #: when the campaign ran with ``--profile``.  Deliberately *not*
    #: serialized into ``to_dict()``: it is persisted as its own
    #: ``<id>.profile.json`` artifact, so manifests and journal records
    #: stay byte-identical with and without profiling (same discipline
    #: as ``RunManifest.salvaged``).
    profile: dict[str, Any] | None = field(default=None, compare=False, repr=False)

    @classmethod
    def from_result(
        cls, result: ExperimentResult, elapsed_s: float, attempts: int = 1
    ) -> ExperimentRecord:
        return cls(
            experiment_id=result.experiment_id,
            status="passed" if result.all_passed else "failed",
            rendered=result.render(),
            checks=[
                {"claim": c.claim, "passed": c.passed, "detail": c.detail}
                for c in result.checks
            ],
            elapsed_s=elapsed_s,
            attempts=attempts,
        )

    @classmethod
    def from_error(
        cls,
        experiment_id: str,
        exc: BaseException,
        elapsed_s: float,
        attempts: int = 1,
    ) -> ExperimentRecord:
        error = {
            "type": type(exc).__name__,
            "category": classify_error(exc),
            "message": str(exc),
        }
        if isinstance(exc, ReproError):
            error["context"] = exc.context()
        return cls(
            experiment_id=experiment_id,
            status="error",
            error=error,
            elapsed_s=elapsed_s,
            attempts=attempts,
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "experiment_id": self.experiment_id,
            "status": self.status,
            "rendered": self.rendered,
            "checks": self.checks,
            "error": self.error,
            "elapsed_s": self.elapsed_s,
            "attempts": self.attempts,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> ExperimentRecord:
        return cls(
            experiment_id=payload["experiment_id"],
            status=payload["status"],
            rendered=payload.get("rendered", ""),
            checks=payload.get("checks", []),
            error=payload.get("error"),
            elapsed_s=payload.get("elapsed_s", 0.0),
            attempts=payload.get("attempts", 1),
        )

    @property
    def is_final(self) -> bool:
        return self.status in FINAL_STATUSES


@dataclass
class RunManifest:
    """Plan and progress of one campaign."""

    run_id: str
    ids: list[str]
    quick: bool = False
    interrupted: bool = False
    created_at: str = ""
    records: dict[str, ExperimentRecord] = field(default_factory=dict)
    #: Set by the store when this manifest was rebuilt from the journal
    #: and result files rather than read straight off ``manifest.json``.
    #: Not serialized; ``salvage_notes`` says what was recovered.
    salvaged: bool = field(default=False, compare=False, repr=False)
    salvage_notes: list[str] = field(
        default_factory=list, compare=False, repr=False
    )

    def remaining(self) -> list[str]:
        """Planned experiments not yet run to a verdict, in plan order."""
        return [
            experiment_id
            for experiment_id in self.ids
            if not (
                (record := self.records.get(experiment_id)) and record.is_final
            )
        ]

    def counts(self) -> dict[str, int]:
        counts = {"passed": 0, "failed": 0, "error": 0, "pending": 0}
        for experiment_id in self.ids:
            record = self.records.get(experiment_id)
            counts["pending" if record is None else record.status] += 1
        return counts

    def to_dict(self) -> dict[str, Any]:
        return {
            "version": MANIFEST_VERSION,
            "journal": JOURNAL_NAME,
            "run_id": self.run_id,
            "ids": self.ids,
            "quick": self.quick,
            "interrupted": self.interrupted,
            "created_at": self.created_at,
            "records": {
                experiment_id: record.to_dict()
                for experiment_id, record in self.records.items()
            },
        }

    def plan_payload(self) -> dict[str, Any]:
        """The journal ``plan`` entry: the run header, never the records."""
        return {
            "version": MANIFEST_VERSION,
            "journal_version": JOURNAL_VERSION,
            "run_id": self.run_id,
            "ids": self.ids,
            "quick": self.quick,
            "created_at": self.created_at,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> RunManifest:
        return cls(
            run_id=payload["run_id"],
            ids=list(payload["ids"]),
            quick=payload.get("quick", False),
            interrupted=payload.get("interrupted", False),
            created_at=payload.get("created_at", ""),
            records={
                experiment_id: ExperimentRecord.from_dict(record)
                for experiment_id, record in payload.get("records", {}).items()
            },
        )


# ----------------------------------------------------------------------
# Manifest schema migration
# ----------------------------------------------------------------------
def _migrate_v0(payload: dict[str, Any]) -> dict[str, Any]:
    """v0 (unversioned prototype) -> v1: records was a *list*; key it by
    experiment id and fill in the header fields v1 made mandatory."""
    records = payload.get("records", [])
    if isinstance(records, list):
        payload["records"] = {
            record["experiment_id"]: record
            for record in records
            if isinstance(record, dict) and "experiment_id" in record
        }
    payload.setdefault("quick", False)
    payload.setdefault("interrupted", False)
    payload.setdefault("created_at", "")
    payload["version"] = 1
    return payload


def _migrate_v1(payload: dict[str, Any]) -> dict[str, Any]:
    """v1 -> v2: the store gained its journal; manifests self-describe it."""
    payload["journal"] = JOURNAL_NAME
    payload["version"] = 2
    return payload


#: Migration chain: ``MIGRATIONS[n]`` lifts a version-``n`` payload to
#: ``n + 1``.  Every historical version is pinned by a test fixture.
MIGRATIONS: dict[int, Callable[[dict[str, Any]], dict[str, Any]]] = {
    0: _migrate_v0,
    1: _migrate_v1,
}


def migrate_payload(
    payload: dict[str, Any], path: Path | None = None
) -> tuple[dict[str, Any], int]:
    """Lift an old manifest payload to ``MANIFEST_VERSION``.

    Returns ``(payload, original_version)``.  Unknown or *newer*
    versions raise — forward migration is the tool's job, not ours.
    """
    version = payload.get("version", 0)
    original = version
    if not isinstance(version, int) or version < 0:
        raise StoreCorruptionError(
            f"manifest version {version!r} is not a known schema version",
            path=str(path) if path else None,
        )
    if version > MANIFEST_VERSION:
        raise CheckpointError(
            f"manifest version {version} is newer than this tool supports "
            f"(expected <= {MANIFEST_VERSION}); upgrade repro to read it",
            path=str(path) if path else None,
        )
    while version < MANIFEST_VERSION:
        payload = MIGRATIONS[version](payload)
        version = payload["version"]
    return payload, original


# ----------------------------------------------------------------------
# The shared disk-write primitive
# ----------------------------------------------------------------------
def _flip_byte(path: Path) -> None:
    """Injected ``io.corrupt``: silent bit rot in the published file."""
    data = bytearray(path.read_bytes())
    if not data:
        return
    data[len(data) // 2] ^= 0xFF
    path.write_bytes(bytes(data))


def atomic_write_json(path: Path, payload: dict[str, Any]) -> str:
    """Write JSON via temp-file-then-rename; returns the sha256 of the
    published bytes (the journal records it in ``flush`` entries).

    Readers never see a torn file — unless the ``io.torn-write`` fault
    is armed, which deliberately leaves a prefix of the new content at
    the final path (simulating a crash on a non-atomic filesystem)
    before raising.  ``io.enospc`` and ``io.fsync-fail`` raise
    ``OSError`` inside the write; ``io.corrupt`` flips a byte of the
    published file *silently* after a successful rename.
    """
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    tmp = path.with_name(path.name + ".tmp")
    try:
        with open(tmp, "w", encoding="utf-8") as handle:
            fault_point("io.enospc", path=str(path))
            handle.write(text)
            handle.flush()
            fault_point("io.fsync-fail", path=str(path))
            os.fsync(handle.fileno())
        # A fault here simulates a crash after writing but before
        # publishing: the final path must still hold the previous version.
        fault_point("checkpoint.write", path=str(path))
        try:
            fault_point("io.torn-write", path=str(path))
        except FaultInjected as exc:
            with open(path, "w", encoding="utf-8") as torn:
                torn.write(text[: max(1, len(text) // 2)])
            raise CheckpointError(
                f"injected torn write publishing {path.name}", path=str(path)
            ) from exc
        os.replace(tmp, path)
        try:
            fault_point("io.corrupt", path=str(path))
        except FaultInjected:
            _flip_byte(path)  # the caller believes the write succeeded
    except OSError as exc:
        hint = " (disk full)" if exc.errno == errno_module.ENOSPC else ""
        raise CheckpointError(
            f"cannot write {path.name}: {exc}{hint}",
            path=str(path),
            transient=True,
        ) from exc
    finally:
        if tmp.exists():
            tmp.unlink(missing_ok=True)
    return file_checksum(text.encode("utf-8"))


# ----------------------------------------------------------------------
# Salvage: rebuild a manifest from whatever survived
# ----------------------------------------------------------------------
def _header_matches(manifest: RunManifest, plan: dict[str, Any]) -> bool:
    return (
        manifest.run_id == plan.get("run_id", manifest.run_id)
        and manifest.ids == list(plan.get("ids", manifest.ids))
        and manifest.quick == plan.get("quick", manifest.quick)
        and manifest.created_at == plan.get("created_at", manifest.created_at)
    )


def _manifest_covers(manifest: RunManifest, replay: JournalReplay) -> bool:
    """Does the manifest already contain everything the journal knows?

    True means the manifest is consistent with (or ahead of) the
    journal — e.g. a crash landed between the manifest rename and the
    journal's ``flush`` entry — and can be trusted as-is.
    """
    plan = replay.plan
    if plan is not None and not _header_matches(manifest, plan):
        return False
    for experiment_id, payload in replay.records.items():
        record = manifest.records.get(experiment_id)
        if record is None or record.to_dict() != payload:
            return False
    return True


def reconcile_sources(
    run_id: str,
    manifest: RunManifest | None,
    replay: JournalReplay | None,
    results: dict[str, dict[str, Any]],
) -> tuple[RunManifest | None, list[str]]:
    """Rebuild the best-supported manifest from the surviving sources.

    Precedence: the journal's checksummed entries override the (possibly
    corrupt or stale) manifest; intact per-experiment result files fill
    records missing from both.  Returns ``(manifest, notes)`` —
    ``None`` when no source can even name the run's plan.
    """
    notes: list[str] = []
    plan = replay.plan if replay is not None else None
    if manifest is not None:
        base = manifest
        if plan is not None and not _header_matches(manifest, plan):
            base = RunManifest(
                run_id=plan.get("run_id", run_id),
                ids=list(plan.get("ids", [])),
                quick=bool(plan.get("quick", False)),
                created_at=plan.get("created_at", ""),
                records=dict(manifest.records),
            )
            notes.append("run header restored from the journal plan entry")
    elif plan is not None:
        base = RunManifest(
            run_id=plan.get("run_id", run_id),
            ids=list(plan.get("ids", [])),
            quick=bool(plan.get("quick", False)),
            created_at=plan.get("created_at", ""),
        )
        notes.append("run header rebuilt from the journal plan entry")
    elif results:
        # Last resort: the plan is gone; at least preserve the outcomes.
        base = RunManifest(run_id=run_id, ids=sorted(results))
        notes.append(
            "run header rebuilt from result files alone "
            "(plan order lost; ids sorted)"
        )
    else:
        return None, ["no surviving source for the run header"]

    if replay is not None:
        for experiment_id, payload in replay.records.items():
            current = base.records.get(experiment_id)
            if current is not None and current.to_dict() == payload:
                continue
            try:
                base.records[experiment_id] = ExperimentRecord.from_dict(payload)
            except (KeyError, TypeError):
                continue
            notes.append(f"record {experiment_id!r} restored from the journal")
    for experiment_id, payload in results.items():
        if experiment_id in base.records:
            continue
        try:
            base.records[experiment_id] = ExperimentRecord.from_dict(payload)
        except (KeyError, TypeError):
            continue
        notes.append(
            f"record {experiment_id!r} restored from its result file"
        )
    for experiment_id in [e for e in base.records if e not in base.ids]:
        del base.records[experiment_id]
        notes.append(f"dropped record {experiment_id!r}: not in the plan")
    # A salvaged run is by definition not a cleanly-interrupted one;
    # resume clears the flag anyway, and repair must converge to the
    # manifest an uninterrupted run would have written.
    base.interrupted = False
    return base, notes


class RunStore:
    """Creates, persists, and reloads run directories under ``root``."""

    def __init__(self, root: str | Path = "runs") -> None:
        self.root = Path(root)

    def run_dir(self, run_id: str) -> Path:
        return self.root / run_id

    def manifest_path(self, run_id: str) -> Path:
        return self.run_dir(run_id) / "manifest.json"

    def journal_path(self, run_id: str) -> Path:
        return self.run_dir(run_id) / JOURNAL_NAME

    def result_path(self, run_id: str, experiment_id: str) -> Path:
        return self.run_dir(run_id) / f"{experiment_id}.json"

    def artifact_path(self, run_id: str, name: str) -> Path:
        """A named non-result artifact, e.g. ``table3.profile.json``.

        Artifact stems carry a suffix (``<id>.profile``), so
        :meth:`result_files` never mistakes them for result files: their
        stem cannot equal the ``experiment_id`` field inside.
        """
        return self.run_dir(run_id) / f"{name}.json"

    @staticmethod
    def generate_run_id() -> str:
        """Timestamp + pid: sortable, unique per process launch."""
        return time.strftime("%Y%m%d-%H%M%S") + f"-{os.getpid()}"

    # ------------------------------------------------------------------
    # Hygiene
    # ------------------------------------------------------------------
    def sweep_tmp(self, run_id: str) -> list[Path]:
        """Remove stray ``*.tmp`` files a hard kill left mid-write.

        The store is single-writer per run, so any ``.tmp`` present when
        a run is opened is an orphan from a previous process — without
        this sweep they accumulate forever.  Returns what was removed.
        """
        run_dir = self.run_dir(run_id)
        swept: list[Path] = []
        if not run_dir.is_dir():
            return swept
        for tmp in sorted(run_dir.glob("*.tmp")):
            try:
                tmp.unlink()
            except OSError:
                continue
            swept.append(tmp)
        return swept

    # ------------------------------------------------------------------
    # Journal plumbing
    # ------------------------------------------------------------------
    def _ensure_journal(self, manifest: RunManifest) -> None:
        """Guarantee the journal exists and opens with a plan entry
        (runs recorded before the journal existed gain one on first
        write after migration)."""
        path = self.journal_path(manifest.run_id)
        if not path.exists():
            append_entry(path, "plan", manifest.plan_payload())

    # ------------------------------------------------------------------
    # Creating and writing
    # ------------------------------------------------------------------
    def new_run(
        self, ids: list[str], quick: bool = False, run_id: str | None = None
    ) -> RunManifest:
        run_id = run_id or self.generate_run_id()
        run_dir = self.run_dir(run_id)
        if self.manifest_path(run_id).exists():
            raise CheckpointError(
                f"run {run_id!r} already exists under {self.root}; "
                "use --resume or pick another --run-id",
                path=str(run_dir),
            )
        run_dir.mkdir(parents=True, exist_ok=True)
        self.sweep_tmp(run_id)
        manifest = RunManifest(
            run_id=run_id,
            ids=list(ids),
            quick=quick,
            created_at=time.strftime("%Y-%m-%dT%H:%M:%S"),
        )
        self.save(manifest)
        return manifest

    def save(self, manifest: RunManifest) -> None:
        """Flush the manifest atomically (called after every experiment).

        The journal then records the digest of the published bytes, so
        a later load can tell a silently-corrupted manifest from the
        one that was actually written.
        """
        self._ensure_journal(manifest)
        digest = atomic_write_json(
            self.manifest_path(manifest.run_id), manifest.to_dict()
        )
        append_entry(
            self.journal_path(manifest.run_id), "flush", {"sha256": digest}
        )

    def record(self, manifest: RunManifest, record: ExperimentRecord) -> None:
        """Attach one experiment's outcome and persist all three artifacts.

        Write order is the durability contract: journal first (the
        record survives any later crash), then the result file, then
        the manifest flush.  A crash in any window loses nothing that
        was journaled — load and ``repro-doctor`` replay it.
        """
        manifest.records[record.experiment_id] = record
        self._ensure_journal(manifest)
        append_entry(
            self.journal_path(manifest.run_id), "record", record.to_dict()
        )
        atomic_write_json(
            self.result_path(manifest.run_id, record.experiment_id),
            record.to_dict(),
        )
        self.save(manifest)

    def record_artifact(
        self, manifest: RunManifest, name: str, payload: dict[str, Any]
    ) -> str:
        """Persist one named artifact and journal its digest.

        File first, journal second — the inverse of the record/flush
        discipline, because the journal only holds the artifact's
        *digest*: a crash between the two leaves a valid artifact that
        merely lacks its audit line (``repro-doctor`` reports it as
        informational and ``--repair`` re-journals it).  Returns the
        sha256 of the published bytes.
        """
        self._ensure_journal(manifest)
        digest = atomic_write_json(
            self.artifact_path(manifest.run_id, name), payload
        )
        append_entry(
            self.journal_path(manifest.run_id),
            "artifact",
            {"name": name, "sha256": digest},
        )
        return digest

    # ------------------------------------------------------------------
    # Loading (and salvaging)
    # ------------------------------------------------------------------
    def result_files(self, run_id: str) -> dict[str, dict[str, Any]]:
        """Intact per-experiment result payloads, keyed by experiment id.

        Result files are written atomically, so any one that parses and
        self-identifies is trustworthy; torn or flipped ones are
        skipped (the journal usually still has their record).
        """
        results: dict[str, dict[str, Any]] = {}
        run_dir = self.run_dir(run_id)
        if not run_dir.is_dir():
            return results
        for path in sorted(run_dir.glob("*.json")):
            if path.name in NON_RESULT_FILES:
                continue
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, UnicodeDecodeError, json.JSONDecodeError):
                continue
            if (
                isinstance(payload, dict)
                and payload.get("experiment_id") == path.stem
                and "status" in payload
            ):
                results[path.stem] = payload
        return results

    def _parse_manifest_quietly(self, run_id: str) -> RunManifest | None:
        """The manifest if it reads, parses, and migrates; else None."""
        try:
            payload = json.loads(
                self.manifest_path(run_id).read_text(encoding="utf-8")
            )
            if not isinstance(payload, dict):
                return None
            payload, _ = migrate_payload(payload, self.manifest_path(run_id))
            return RunManifest.from_dict(payload)
        except Exception:
            return None

    def salvage(self, run_id: str, reason: str) -> RunManifest:
        """Rebuild the run's manifest from every surviving source.

        Raises :class:`StoreCorruptionError` when nothing survives to
        rebuild from (no readable journal plan, manifest, or results).
        """
        replay: JournalReplay | None = None
        if self.journal_path(run_id).exists():
            replay = read_journal(self.journal_path(run_id))
        manifest = self._parse_manifest_quietly(run_id)
        results = self.result_files(run_id)
        rebuilt, notes = reconcile_sources(run_id, manifest, replay, results)
        if rebuilt is None or not rebuilt.ids:
            raise StoreCorruptionError(
                f"run {run_id!r}: {reason}, and neither the journal nor any "
                "result file survives to salvage from; run "
                f"`repro-doctor --runs-dir {self.root} --repair` to audit "
                "the store",
                path=str(self.manifest_path(run_id)),
            )
        rebuilt.salvaged = True
        rebuilt.salvage_notes = [reason, *notes]
        return rebuilt

    def load(self, run_id: str) -> RunManifest:
        """Load a run, salvaging from the journal when the manifest is
        torn, missing, stale, or silently corrupt.

        The result's ``salvaged`` flag tells the caller the on-disk
        manifest did not supply it verbatim (re-``save()`` to heal).
        Read errors (``OSError``) are reported as transient I/O
        problems, never as corruption.
        """
        path = self.manifest_path(run_id)
        self.sweep_tmp(run_id)
        journal_exists = self.journal_path(run_id).exists()
        if not path.exists():
            if journal_exists or self.result_files(run_id):
                return self.salvage(run_id, "manifest missing")
            known = sorted(
                p.parent.name for p in self.root.glob("*/manifest.json")
            )
            hint = f"; known runs: {', '.join(known)}" if known else ""
            raise CheckpointError(
                f"no manifest for run {run_id!r} under {self.root}{hint}",
                path=str(path),
            )
        try:
            data = path.read_bytes()
        except OSError as exc:
            raise CheckpointError(
                f"cannot read manifest for run {run_id!r}: {exc} "
                "(transient I/O error, not corruption — retry, or check "
                "permissions)",
                path=str(path),
                transient=True,
            ) from exc
        try:
            payload = json.loads(data.decode("utf-8"))
            if not isinstance(payload, dict):
                raise json.JSONDecodeError("not a JSON object", "", 0)
            payload, _ = migrate_payload(payload, path)
            manifest = RunManifest.from_dict(payload)
        except (UnicodeDecodeError, json.JSONDecodeError, KeyError, TypeError) as exc:
            if journal_exists or self.result_files(run_id):
                return self.salvage(
                    run_id, f"corrupt manifest ({type(exc).__name__}: {exc})"
                )
            raise StoreCorruptionError(
                f"corrupt manifest for run {run_id!r}: {exc}; no journal "
                "survives to salvage from — run "
                f"`repro-doctor --runs-dir {self.root} --repair`",
                path=str(path),
            ) from exc
        if journal_exists:
            replay = read_journal(self.journal_path(run_id))
            if not _manifest_covers(manifest, replay):
                digest_ok = replay.last_flush_digest in (
                    None,
                    file_checksum(data),
                )
                reason = (
                    "manifest behind the journal"
                    if digest_ok
                    else "manifest checksum mismatch against the journal"
                )
                return self.salvage(run_id, reason)
        return manifest
