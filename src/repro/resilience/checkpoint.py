"""Crash-safe run artifacts: per-run manifests and per-experiment results.

A campaign writes everything it learns under ``runs/<run-id>/``::

    runs/20260806-141503-1234/
        manifest.json      # plan, status and outcome of every experiment
        table1.json        # one file per completed experiment: rendered
        table2.json        #   table, shape checks, error (if any), timing

Every write is temp-file-then-``os.replace`` into place, so a crash (or
an armed ``checkpoint.write`` fault) at any instant leaves the previous
manifest intact — there is never a half-written JSON file at the final
path.  Because the simulator is deterministic, ``--resume <run-id>``
can skip completed experiments and replay their stored rendering
byte-for-byte while re-running only what is missing.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.resilience.errors import CheckpointError, ReproError, classify_error
from repro.resilience.faults import fault_point

if TYPE_CHECKING:  # keep this module import-light: no experiment stack
    from repro.exp.base import ExperimentResult

MANIFEST_VERSION = 1

#: Statuses that mean "this experiment ran to a verdict" — resume skips
#: them.  ``error`` is *not* final: a resumed campaign retries it.
FINAL_STATUSES = ("passed", "failed")


@dataclass
class ExperimentRecord:
    """Outcome of one experiment within one run."""

    experiment_id: str
    status: str  # "passed" | "failed" | "error"
    rendered: str = ""
    checks: list[dict[str, Any]] = field(default_factory=list)
    error: dict[str, Any] | None = None
    elapsed_s: float = 0.0
    attempts: int = 1

    @classmethod
    def from_result(
        cls, result: ExperimentResult, elapsed_s: float, attempts: int = 1
    ) -> ExperimentRecord:
        return cls(
            experiment_id=result.experiment_id,
            status="passed" if result.all_passed else "failed",
            rendered=result.render(),
            checks=[
                {"claim": c.claim, "passed": c.passed, "detail": c.detail}
                for c in result.checks
            ],
            elapsed_s=elapsed_s,
            attempts=attempts,
        )

    @classmethod
    def from_error(
        cls,
        experiment_id: str,
        exc: BaseException,
        elapsed_s: float,
        attempts: int = 1,
    ) -> ExperimentRecord:
        error = {
            "type": type(exc).__name__,
            "category": classify_error(exc),
            "message": str(exc),
        }
        if isinstance(exc, ReproError):
            error["context"] = exc.context()
        return cls(
            experiment_id=experiment_id,
            status="error",
            error=error,
            elapsed_s=elapsed_s,
            attempts=attempts,
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "experiment_id": self.experiment_id,
            "status": self.status,
            "rendered": self.rendered,
            "checks": self.checks,
            "error": self.error,
            "elapsed_s": self.elapsed_s,
            "attempts": self.attempts,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> ExperimentRecord:
        return cls(
            experiment_id=payload["experiment_id"],
            status=payload["status"],
            rendered=payload.get("rendered", ""),
            checks=payload.get("checks", []),
            error=payload.get("error"),
            elapsed_s=payload.get("elapsed_s", 0.0),
            attempts=payload.get("attempts", 1),
        )

    @property
    def is_final(self) -> bool:
        return self.status in FINAL_STATUSES


@dataclass
class RunManifest:
    """Plan and progress of one campaign."""

    run_id: str
    ids: list[str]
    quick: bool = False
    interrupted: bool = False
    created_at: str = ""
    records: dict[str, ExperimentRecord] = field(default_factory=dict)

    def remaining(self) -> list[str]:
        """Planned experiments not yet run to a verdict, in plan order."""
        return [
            experiment_id
            for experiment_id in self.ids
            if not (
                (record := self.records.get(experiment_id)) and record.is_final
            )
        ]

    def counts(self) -> dict[str, int]:
        counts = {"passed": 0, "failed": 0, "error": 0, "pending": 0}
        for experiment_id in self.ids:
            record = self.records.get(experiment_id)
            counts["pending" if record is None else record.status] += 1
        return counts

    def to_dict(self) -> dict[str, Any]:
        return {
            "version": MANIFEST_VERSION,
            "run_id": self.run_id,
            "ids": self.ids,
            "quick": self.quick,
            "interrupted": self.interrupted,
            "created_at": self.created_at,
            "records": {
                experiment_id: record.to_dict()
                for experiment_id, record in self.records.items()
            },
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> RunManifest:
        return cls(
            run_id=payload["run_id"],
            ids=list(payload["ids"]),
            quick=payload.get("quick", False),
            interrupted=payload.get("interrupted", False),
            created_at=payload.get("created_at", ""),
            records={
                experiment_id: ExperimentRecord.from_dict(record)
                for experiment_id, record in payload.get("records", {}).items()
            },
        )


def atomic_write_json(path: Path, payload: dict[str, Any]) -> None:
    """Write JSON via temp-file-then-rename so readers never see a torn file."""
    tmp = path.with_name(path.name + ".tmp")
    try:
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        # A fault here simulates a crash after writing but before
        # publishing: the final path must still hold the previous version.
        fault_point("checkpoint.write", path=str(path))
        os.replace(tmp, path)
    except OSError as exc:
        raise CheckpointError(
            f"cannot write {path.name}: {exc}", path=str(path)
        ) from exc
    finally:
        if tmp.exists():
            tmp.unlink(missing_ok=True)


class RunStore:
    """Creates, persists, and reloads run directories under ``root``."""

    def __init__(self, root: str | Path = "runs") -> None:
        self.root = Path(root)

    def run_dir(self, run_id: str) -> Path:
        return self.root / run_id

    def manifest_path(self, run_id: str) -> Path:
        return self.run_dir(run_id) / "manifest.json"

    def result_path(self, run_id: str, experiment_id: str) -> Path:
        return self.run_dir(run_id) / f"{experiment_id}.json"

    @staticmethod
    def generate_run_id() -> str:
        """Timestamp + pid: sortable, unique per process launch."""
        return time.strftime("%Y%m%d-%H%M%S") + f"-{os.getpid()}"

    def new_run(
        self, ids: list[str], quick: bool = False, run_id: str | None = None
    ) -> RunManifest:
        run_id = run_id or self.generate_run_id()
        run_dir = self.run_dir(run_id)
        if self.manifest_path(run_id).exists():
            raise CheckpointError(
                f"run {run_id!r} already exists under {self.root}; "
                "use --resume or pick another --run-id",
                path=str(run_dir),
            )
        run_dir.mkdir(parents=True, exist_ok=True)
        manifest = RunManifest(
            run_id=run_id,
            ids=list(ids),
            quick=quick,
            created_at=time.strftime("%Y-%m-%dT%H:%M:%S"),
        )
        self.save(manifest)
        return manifest

    def load(self, run_id: str) -> RunManifest:
        path = self.manifest_path(run_id)
        if not path.exists():
            known = sorted(
                p.parent.name for p in self.root.glob("*/manifest.json")
            )
            hint = f"; known runs: {', '.join(known)}" if known else ""
            raise CheckpointError(
                f"no manifest for run {run_id!r} under {self.root}{hint}",
                path=str(path),
            )
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise CheckpointError(
                f"corrupt manifest for run {run_id!r}: {exc}", path=str(path)
            ) from exc
        version = payload.get("version")
        if version != MANIFEST_VERSION:
            raise CheckpointError(
                f"manifest version {version!r} unsupported "
                f"(expected {MANIFEST_VERSION})",
                path=str(path),
            )
        return RunManifest.from_dict(payload)

    def save(self, manifest: RunManifest) -> None:
        """Flush the manifest atomically (called after every experiment)."""
        atomic_write_json(self.manifest_path(manifest.run_id), manifest.to_dict())

    def record(self, manifest: RunManifest, record: ExperimentRecord) -> None:
        """Attach one experiment's outcome and persist both artifacts."""
        manifest.records[record.experiment_id] = record
        atomic_write_json(
            self.result_path(manifest.run_id, record.experiment_id),
            record.to_dict(),
        )
        self.save(manifest)
