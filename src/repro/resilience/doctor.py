"""``repro-doctor``: audit and repair a runs root.

A long campaign's ``--resume`` is only as trustworthy as the bytes under
``runs/``.  The doctor walks every run directory and reports what a
crash, a full disk, or plain bit rot left behind::

    repro-doctor                       # audit ./runs
    repro-doctor --runs-dir /data/runs r1 r2
    repro-doctor --repair              # rebuild what can be rebuilt

Each finding carries a ``D``-code (mirroring the lint code table in
DESIGN.md §11) and a severity; ``--repair`` then rebuilds a loadable
manifest from the surviving sources — the checksummed journal first,
intact per-experiment result files second — rewrites the journal
wholesale, restores missing result files, and sweeps the debris
(orphaned ``*.tmp`` writes, stale supervisor ``.hb`` heartbeats).
After a successful repair, ``repro-experiments --resume <run-id>``
converges to the same manifest an uninterrupted run would have written.

Findings are narrated through :class:`repro.obs.progress.CampaignReporter`
and published as ``doctor.finding`` instants on the event bus when
telemetry is live, exactly like lint findings.

Exit status: 0 when the store is healthy (or every problem was
repaired), 1 when error-severity findings remain, 2 for usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.resilience.checkpoint import (
    MANIFEST_VERSION,
    NON_RESULT_FILES,
    RunManifest,
    RunStore,
    atomic_write_json,
    migrate_payload,
)
from repro.resilience.errors import CheckpointError, StoreCorruptionError
from repro.resilience.journal import file_checksum, read_journal, rewrite

#: The doctor's diagnostic codes (DESIGN.md §13).
CODES: dict[str, str] = {
    "D001": "manifest missing (journal or result files survive)",
    "D002": "manifest unreadable (transient I/O error)",
    "D003": "manifest corrupt (does not parse or migrate)",
    "D004": "manifest checksum mismatch against the journal flush digest",
    "D005": "manifest behind the journal (missing journaled records)",
    "D006": "manifest schema version drift (migratable)",
    "D007": "manifest schema version newer than this tool supports",
    "D008": "journal missing (rebuildable from the manifest)",
    "D009": "journal line corrupt (checksum or parse failure)",
    "D010": "journal torn tail (interrupted append)",
    "D011": "orphaned .tmp file from an interrupted atomic write",
    "D012": "result file has no manifest record",
    "D013": "manifest record has no result file",
    "D014": "stale supervisor heartbeat files",
    "D015": "nothing survives to rebuild the run from",
    "D016": "journaled artifact missing or digest mismatch",
    "D017": "artifact file published but never journaled",
    "D018": "indexed trace object missing from the store",
    "D019": "trace object corrupt (bad header or data checksum)",
    "D020": "trace object present but never indexed",
    "D021": "trace index line untrustworthy (corrupt or torn)",
}

#: Pseudo run id stamped on trace-store findings (they audit
#: ``--trace-store``, not a run directory).
TRACE_STORE_LABEL = "trace-store"

SEVERITIES = ("error", "warning", "info")


@dataclass
class Finding:
    """One problem the audit found in one run directory."""

    code: str
    severity: str  # "error" | "warning" | "info"
    run_id: str
    message: str
    repairable: bool = True
    context: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.code not in CODES:
            raise ValueError(f"unknown doctor code {self.code!r}")
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")

    def render(self) -> str:
        """One human-readable report line."""
        fix = "" if self.repairable else " (not auto-repairable)"
        return f"{self.run_id}: {self.code} {self.severity}: {self.message}{fix}"

    def to_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "code": self.code,
            "severity": self.severity,
            "run_id": self.run_id,
            "message": self.message,
            "repairable": self.repairable,
        }
        if self.context:
            payload["context"] = self.context
        return payload


# ----------------------------------------------------------------------
# Audit
# ----------------------------------------------------------------------
def _manifest_findings(
    store: RunStore, run_id: str, findings: list[Finding]
) -> RunManifest | None:
    """Audit ``manifest.json``; returns the parsed manifest if readable."""
    path = store.manifest_path(run_id)
    if not path.exists():
        journal = store.journal_path(run_id).exists()
        results = store.result_files(run_id)
        if journal or results:
            findings.append(
                Finding(
                    "D001",
                    "error",
                    run_id,
                    "manifest.json is missing; "
                    + ("the journal survives" if journal else "")
                    + (" and " if journal and results else "")
                    + (f"{len(results)} result file(s) survive" if results else ""),
                )
            )
        else:
            findings.append(
                Finding(
                    "D015",
                    "error",
                    run_id,
                    "no manifest, journal, or result files survive",
                    repairable=False,
                )
            )
        return None
    try:
        data = path.read_bytes()
    except OSError as exc:
        findings.append(
            Finding(
                "D002",
                "error",
                run_id,
                f"manifest.json cannot be read: {exc} (transient I/O, "
                "not corruption — retry or check permissions)",
                repairable=False,
            )
        )
        return None
    try:
        payload = json.loads(data.decode("utf-8"))
        if not isinstance(payload, dict):
            raise json.JSONDecodeError("not a JSON object", "", 0)
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        findings.append(
            Finding("D003", "error", run_id, f"manifest.json is corrupt: {exc}")
        )
        return None
    version = payload.get("version", 0)
    if isinstance(version, int) and version > MANIFEST_VERSION:
        findings.append(
            Finding(
                "D007",
                "error",
                run_id,
                f"manifest version {version} is newer than supported "
                f"({MANIFEST_VERSION}); upgrade repro instead of repairing",
                repairable=False,
            )
        )
        return None
    try:
        payload, original = migrate_payload(payload, path)
        manifest = RunManifest.from_dict(payload)
    except (CheckpointError, KeyError, TypeError) as exc:
        findings.append(
            Finding("D003", "error", run_id, f"manifest.json is corrupt: {exc}")
        )
        return None
    if original != MANIFEST_VERSION:
        findings.append(
            Finding(
                "D006",
                "warning",
                run_id,
                f"manifest schema v{original} (current v{MANIFEST_VERSION}); "
                "loads through the migration chain; repair rewrites it current",
                context={"version": original},
            )
        )
    return manifest


def _journal_findings(
    store: RunStore,
    run_id: str,
    manifest: RunManifest | None,
    manifest_bytes: bytes | None,
    findings: list[Finding],
) -> None:
    path = store.journal_path(run_id)
    if not path.exists():
        if manifest is not None:
            findings.append(
                Finding(
                    "D008",
                    "warning",
                    run_id,
                    "records.jsonl is missing (pre-journal run or deleted); "
                    "repair rebuilds it from the manifest",
                )
            )
        return
    replay = read_journal(path)
    if replay.torn_tail:
        findings.append(
            Finding(
                "D010",
                "info",
                run_id,
                "journal ends in a torn line (interrupted append); the "
                "surviving entries replay cleanly",
            )
        )
    for bad in replay.corrupt_lines:
        findings.append(
            Finding(
                "D009",
                "warning",
                run_id,
                f"journal line {bad.lineno} untrustworthy ({bad.reason})",
                context={"lineno": bad.lineno, "reason": bad.reason},
            )
        )
    if manifest is None:
        return
    digest = replay.last_flush_digest
    if (
        digest is not None
        and manifest_bytes is not None
        and digest != file_checksum(manifest_bytes)
    ):
        missing = [
            experiment_id
            for experiment_id, payload in replay.records.items()
            if (record := manifest.records.get(experiment_id)) is None
            or record.to_dict() != payload
        ]
        if missing:
            findings.append(
                Finding(
                    "D005",
                    "error",
                    run_id,
                    "manifest is behind the journal: record(s) "
                    f"{', '.join(sorted(missing))} are journaled but not "
                    "in the manifest",
                    context={"records": sorted(missing)},
                )
            )
        else:
            findings.append(
                Finding(
                    "D004",
                    "error",
                    run_id,
                    "manifest bytes do not match the digest the journal "
                    "recorded at the last flush (silent corruption?)",
                )
            )
    else:
        stale = [
            experiment_id
            for experiment_id, payload in replay.records.items()
            if (record := manifest.records.get(experiment_id)) is None
            or record.to_dict() != payload
        ]
        if stale:
            findings.append(
                Finding(
                    "D005",
                    "error",
                    run_id,
                    "manifest is behind the journal: record(s) "
                    f"{', '.join(sorted(stale))} are journaled but not "
                    "in the manifest",
                    context={"records": sorted(stale)},
                )
            )


def _debris_findings(
    store: RunStore,
    run_id: str,
    manifest: RunManifest | None,
    findings: list[Finding],
) -> None:
    run_dir = store.run_dir(run_id)
    tmp_files = sorted(p.name for p in run_dir.glob("*.tmp"))
    if tmp_files:
        findings.append(
            Finding(
                "D011",
                "warning",
                run_id,
                f"orphaned tmp file(s) from interrupted writes: "
                f"{', '.join(tmp_files)}",
                context={"files": tmp_files},
            )
        )
    heartbeats = sorted(p.name for p in run_dir.glob(".hb/*.hb"))
    if heartbeats:
        findings.append(
            Finding(
                "D014",
                "warning",
                run_id,
                f"{len(heartbeats)} stale supervisor heartbeat file(s) "
                "(the campaign process died without cleanup)",
                context={"files": heartbeats},
            )
        )
    if manifest is None:
        return
    results = store.result_files(run_id)
    for experiment_id in sorted(set(results) - set(manifest.records)):
        planned = experiment_id in manifest.ids
        findings.append(
            Finding(
                "D012",
                "warning" if planned else "info",
                run_id,
                f"result file {experiment_id}.json has no manifest record"
                + (
                    "" if planned
                    else " and is not in the plan (left untouched)"
                ),
                repairable=planned,
                context={"experiment_id": experiment_id},
            )
        )
    for experiment_id in sorted(set(manifest.records) - set(results)):
        findings.append(
            Finding(
                "D013",
                "warning",
                run_id,
                f"record {experiment_id} has no intact result file; "
                "repair regenerates it from the manifest",
                context={"experiment_id": experiment_id},
            )
        )


def _artifact_files(store: RunStore, run_id: str) -> dict[str, Path]:
    """Non-result artifacts on disk, keyed by journal name (file stem).

    Today the only artifact kind is the locality profile
    (``<id>.profile.json``); the suffixed stem is what keeps these out
    of :meth:`RunStore.result_files`.
    """
    run_dir = store.run_dir(run_id)
    if not run_dir.is_dir():
        return {}
    return {
        p.name[: -len(".json")]: p
        for p in sorted(run_dir.glob("*.profile.json"))
    }


def _artifact_findings(
    store: RunStore, run_id: str, findings: list[Finding]
) -> None:
    """Audit journaled artifact digests against the files on disk.

    ``record_artifact`` writes the file first and journals its digest
    second, so the two failure shapes are asymmetric: a journaled name
    with no (or mismatched) file lost data (D016, warning), while a
    file with no journal line is merely un-audited — the crash landed
    between the two steps (D017, info; ``--repair`` journals it).
    """
    journal_path = store.journal_path(run_id)
    journaled: dict[str, str] = {}
    if journal_path.exists():
        try:
            journaled = read_journal(journal_path).artifacts
        except CheckpointError:
            journaled = {}
    files = _artifact_files(store, run_id)
    for name in sorted(set(journaled) - set(files)):
        findings.append(
            Finding(
                "D016",
                "warning",
                run_id,
                f"journaled artifact {name}.json is missing from disk; "
                "repair drops its journal line",
                context={"name": name},
            )
        )
    for name, path in files.items():
        if name not in journaled:
            findings.append(
                Finding(
                    "D017",
                    "info",
                    run_id,
                    f"artifact {name}.json was published but never "
                    "journaled (crash between write and journal append); "
                    "repair journals its digest",
                    context={"name": name},
                )
            )
            continue
        try:
            data = path.read_bytes()
        except OSError:
            continue
        if file_checksum(data) != journaled[name]:
            findings.append(
                Finding(
                    "D016",
                    "warning",
                    run_id,
                    f"artifact {name}.json does not match its journaled "
                    "digest (silent corruption?); repair re-journals the "
                    "surviving bytes if they still parse",
                    context={"name": name},
                )
            )


def audit_run(store: RunStore, run_id: str) -> list[Finding]:
    """Every problem the doctor can see in one run directory."""
    findings: list[Finding] = []
    manifest = _manifest_findings(store, run_id, findings)
    manifest_bytes: bytes | None = None
    if manifest is not None:
        try:
            manifest_bytes = store.manifest_path(run_id).read_bytes()
        except OSError:
            manifest_bytes = None
    _journal_findings(store, run_id, manifest, manifest_bytes, findings)
    _debris_findings(store, run_id, manifest, findings)
    _artifact_findings(store, run_id, findings)
    return findings


def audit_trace_store(root: Path) -> list[Finding]:
    """Audit a ``--trace-store`` directory (``repro.trace.store``).

    Three-way reconciliation between the checksummed ``index.jsonl``
    and the content-addressed objects under ``objects/``: indexed
    entries with no (or corrupt) object lost data; valid objects with
    no index line are merely un-audited (the crash landed between the
    object rename and the index append); untrustworthy index lines are
    reported per line, exactly like run-journal damage.
    """
    findings: list[Finding] = []
    index_path = root / "index.jsonl"
    objects = sorted((root / "objects").glob("*/*.rtr"))
    if not index_path.exists() and not objects:
        return findings
    indexed: dict[str, dict[str, Any]] = {}
    if index_path.exists():
        replay = read_journal(index_path)
        for bad in replay.corrupt_lines:
            findings.append(
                Finding(
                    "D021",
                    "warning",
                    TRACE_STORE_LABEL,
                    f"index line {bad.lineno} untrustworthy ({bad.reason})",
                    context={"lineno": bad.lineno, "reason": bad.reason},
                )
            )
        if replay.torn_tail:
            findings.append(
                Finding(
                    "D021",
                    "info",
                    TRACE_STORE_LABEL,
                    "index ends in a torn line (interrupted append); the "
                    "surviving entries replay cleanly",
                )
            )
        indexed = replay.traces
    on_disk = {path.stem: path for path in objects}
    for digest in sorted(set(indexed) - set(on_disk)):
        findings.append(
            Finding(
                "D018",
                "warning",
                TRACE_STORE_LABEL,
                f"indexed trace object {digest[:12]}… is missing from "
                "objects/; repair drops its index line (the trace "
                "regenerates on the next campaign)",
                context={"digest": digest},
            )
        )
    from repro.trace.store import verify_object

    for digest, path in on_disk.items():
        try:
            header = verify_object(path)
            if header.get("digest") != digest:
                raise CheckpointError(
                    f"header digest does not match object name {digest[:12]}…",
                    path=str(path),
                )
        except CheckpointError as exc:
            findings.append(
                Finding(
                    "D019",
                    "warning",
                    TRACE_STORE_LABEL,
                    f"trace object {path.name} is corrupt: {exc}; repair "
                    "removes it (lookups already treat it as a miss)",
                    context={"digest": digest},
                )
            )
            continue
        if digest not in indexed:
            findings.append(
                Finding(
                    "D020",
                    "info",
                    TRACE_STORE_LABEL,
                    f"trace object {path.name} was published but never "
                    "indexed (crash between rename and index append); "
                    "repair journals it",
                    context={"digest": digest},
                )
            )
    return findings


def repair_trace_store(root: Path) -> list[str]:
    """Rebuild a trace store to a clean, fully-indexed state.

    Every object that passes the full integrity check keeps its place
    and gets a fresh index line; corrupt objects are removed (the store
    treats them as misses anyway, so this only sheds dead bytes).  The
    index is rewritten wholesale with the same tmp-then-rename
    discipline as run journals.
    """
    from repro.trace.store import index_payload, verify_object

    actions: list[str] = []
    entries: list[tuple[str, dict[str, Any]]] = []
    for path in sorted((root / "objects").glob("*/*.rtr")):
        try:
            header = verify_object(path)
            if header.get("digest") != path.stem:
                raise CheckpointError(
                    "header digest does not match object name",
                    path=str(path),
                )
        except CheckpointError:
            path.unlink(missing_ok=True)
            actions.append(f"removed corrupt trace object {path.name}")
            continue
        entries.append(("trace", index_payload(header, path)))
    for tmp in sorted(root.glob("**/*.tmp")):
        tmp.unlink(missing_ok=True)
        actions.append(f"removed orphaned tmp file {tmp.name}")
    rewrite(root / "index.jsonl", entries)
    actions.append(f"rebuilt trace index with {len(entries)} object(s)")
    return actions


def discover_runs(root: Path) -> list[str]:
    """Run directories under ``root``: anything holding store artifacts."""
    if not root.is_dir():
        return []
    runs = []
    for child in sorted(root.iterdir()):
        if not child.is_dir():
            continue
        has_artifacts = (
            (child / "manifest.json").exists()
            or (child / "records.jsonl").exists()
            or any(
                p.name not in NON_RESULT_FILES for p in child.glob("*.json")
            )
            or any(child.glob("*.tmp"))
        )
        if has_artifacts:
            runs.append(child.name)
    return runs


# ----------------------------------------------------------------------
# Repair
# ----------------------------------------------------------------------
def repair_run(store: RunStore, run_id: str) -> list[str]:
    """Rebuild one run to a clean, loadable, journal-consistent state.

    Returns the actions taken.  Raises :class:`StoreCorruptionError`
    when nothing survives to rebuild from (finding D015).
    """
    actions: list[str] = []
    swept = store.sweep_tmp(run_id)
    if swept:
        actions.append(
            f"removed {len(swept)} orphaned tmp file(s): "
            + ", ".join(p.name for p in swept)
        )
    hb_dir = store.run_dir(run_id) / ".hb"
    if hb_dir.is_dir():
        stale = list(hb_dir.glob("*.hb"))
        for hb in stale:
            hb.unlink(missing_ok=True)
        try:
            hb_dir.rmdir()
        except OSError:
            pass
        if stale:
            actions.append(
                f"removed {len(stale)} stale heartbeat file(s)"
            )

    # Salvage unconditionally: reconcile journal + manifest + results
    # into the best-supported manifest, whatever state the files are in.
    manifest = store.salvage(run_id, "doctor repair")
    for note in manifest.salvage_notes[1:]:
        actions.append(note)

    # Restore result files the manifest has records for.
    results = store.result_files(run_id)
    for experiment_id, record in manifest.records.items():
        if results.get(experiment_id) != record.to_dict():
            atomic_write_json(
                store.result_path(run_id, experiment_id), record.to_dict()
            )
            actions.append(f"rewrote result file {experiment_id}.json")

    # Rebuild the journal wholesale: one plan entry, one record entry
    # per recorded experiment (plan order), then let save() publish the
    # manifest and append the flush digest.
    entries: list[tuple[str, dict[str, Any]]] = [
        ("plan", manifest.plan_payload())
    ]
    for experiment_id in manifest.ids:
        record = manifest.records.get(experiment_id)
        if record is not None:
            entries.append(("record", record.to_dict()))
    # Re-journal surviving artifacts (``<id>.profile.json``): intact
    # files get a fresh digest line — covering both the never-journaled
    # crash window and a journal lost wholesale — while unparseable
    # ones are swept, since an artifact that does not parse serves no
    # reader and would fail its digest audit forever.
    for name, path in sorted(_artifact_files(store, run_id).items()):
        try:
            data = path.read_bytes()
            json.loads(data.decode("utf-8"))
        except OSError:
            continue
        except (UnicodeDecodeError, json.JSONDecodeError):
            path.unlink(missing_ok=True)
            actions.append(f"removed corrupt artifact {name}.json")
            continue
        entries.append(
            ("artifact", {"name": name, "sha256": file_checksum(data)})
        )
    rewrite(store.journal_path(run_id), entries)
    actions.append(f"rebuilt journal with {len(entries)} entries")
    store.save(manifest)
    actions.append(f"rewrote manifest.json (schema v{MANIFEST_VERSION})")
    # sweep_tmp again: atomic_write_json cleans after itself, but a
    # fault injected during repair must not leave new debris behind.
    store.sweep_tmp(run_id)
    return actions


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-doctor",
        description=(
            "Audit (and with --repair, rebuild) the campaign run store: "
            "torn or corrupt manifests, journal damage, version drift, "
            "orphaned tmp files, and stale supervisor heartbeats."
        ),
    )
    parser.add_argument(
        "run_ids",
        nargs="*",
        metavar="RUN_ID",
        help="specific runs to audit (default: every run under --runs-dir)",
    )
    parser.add_argument(
        "--runs-dir",
        default="runs",
        metavar="DIR",
        help="runs root to audit (default: %(default)s)",
    )
    parser.add_argument(
        "--trace-store",
        default=None,
        metavar="DIR",
        help=(
            "also audit a content-addressed trace store (index vs. "
            "objects, full data checksums); --repair removes corrupt "
            "objects and rebuilds the index from the survivors"
        ),
    )
    parser.add_argument(
        "--repair",
        action="store_true",
        help=(
            "rebuild damaged runs from the journal and surviving result "
            "files, rewrite their manifests, and sweep debris"
        ),
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: %(default)s)",
    )
    parser.add_argument(
        "--list-codes",
        action="store_true",
        help="print the diagnostic code table and exit",
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true",
        help="print only the summary line (text format)",
    )
    parser.add_argument(
        "-v", "--verbose", action="store_true",
        help="narrate info-severity findings too",
    )
    return parser


def render_codes() -> str:
    width = max(len(code) for code in CODES)
    return "\n".join(f"{code:<{width}}  {text}" for code, text in CODES.items())


def _emit_findings(findings: list[Finding]) -> None:
    """Publish findings on the event bus when telemetry is live."""
    from repro.obs.config import current_telemetry

    telemetry = current_telemetry()
    if not telemetry.enabled:
        return
    for finding in findings:
        telemetry.bus.instant(
            "doctor.finding",
            code=finding.code,
            severity=finding.severity,
            run_id=finding.run_id,
            message=finding.message,
        )


def main(argv: list[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.list_codes:
        print(render_codes())
        return 0
    store = RunStore(args.runs_dir)
    root = Path(args.runs_dir)
    run_ids = list(args.run_ids) or discover_runs(root)
    if not run_ids and not args.trace_store:
        print(f"doctor: no runs found under {root}")
        return 0

    all_findings: list[Finding] = []
    repaired: dict[str, list[str]] = {}
    failed_repairs: dict[str, str] = {}
    for run_id in run_ids:
        findings = audit_run(store, run_id)
        all_findings.extend(findings)
        needs_repair = any(f.repairable for f in findings)
        if args.repair and needs_repair:
            try:
                repaired[run_id] = repair_run(store, run_id)
            except (StoreCorruptionError, CheckpointError) as exc:
                failed_repairs[run_id] = str(exc)
    if args.trace_store:
        trace_findings = audit_trace_store(Path(args.trace_store))
        all_findings.extend(trace_findings)
        if args.repair and any(f.repairable for f in trace_findings):
            try:
                repaired[TRACE_STORE_LABEL] = repair_trace_store(
                    Path(args.trace_store)
                )
            except (StoreCorruptionError, CheckpointError) as exc:
                failed_repairs[TRACE_STORE_LABEL] = str(exc)

    _emit_findings(all_findings)

    errors = [f for f in all_findings if f.severity == "error"]
    unrepaired_errors = [
        f
        for f in errors
        if f.run_id not in repaired or not f.repairable
    ]
    healthy = not all_findings
    if args.repair:
        status = 1 if (unrepaired_errors or failed_repairs) else 0
    else:
        status = 1 if errors else 0

    if args.format == "json":
        print(
            json.dumps(
                {
                    "runs": run_ids,
                    "findings": [f.to_dict() for f in all_findings],
                    "repaired": repaired,
                    "failed_repairs": failed_repairs,
                    "healthy": healthy,
                },
                indent=2,
                sort_keys=True,
            )
        )
        return status

    from repro.obs.progress import CampaignReporter

    verbosity = -1 if args.quiet else (1 if args.verbose else 0)
    counts = {s: 0 for s in SEVERITIES}
    for finding in all_findings:
        counts[finding.severity] += 1
    audited = f"{len(run_ids)} run(s)"
    if args.trace_store:
        audited += " + trace store"
    summary = (
        f"doctor: {audited} audited — "
        f"{counts['error']} error(s), {counts['warning']} warning(s), "
        f"{counts['info']} note(s)"
        + (f"; {len(repaired)} run(s) repaired" if repaired else "")
        + (
            f"; {len(failed_repairs)} repair(s) FAILED"
            if failed_repairs
            else ""
        )
    )
    with CampaignReporter(sys.stdout, sys.stderr, verbosity) as reporter:
        reporter.doctor_findings(all_findings, summary)
        for run_id, actions in repaired.items():
            for action in actions:
                reporter.info(f"  repaired {run_id}: {action}")
        for run_id, error in failed_repairs.items():
            reporter.error(f"  repair failed for {run_id}: {error}")
    return status


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        sys.exit(0)
