"""Parallel campaign execution: ``repro-experiments --jobs N``.

Shards the remaining experiments of a campaign across worker processes
while keeping every observable output — the run manifest, the
per-experiment result files, the summary table, the exit code —
byte-identical to a serial run (timestamps and ``elapsed_s`` aside).
The parent keeps sole ownership of everything stateful:

* **Supervision.**  Dispatch goes through
  :class:`~repro.resilience.supervisor.PoolSupervisor`: a worker death
  (segfault, OOM kill, injected ``worker.crash``) breaks the pool, and
  the supervisor rebuilds it and resubmits the orphaned experiments
  instead of losing them.  An experiment that kills its worker
  ``max_worker_crashes`` times is *quarantined*: recorded in the
  manifest as a :class:`~repro.resilience.errors.WorkerCrashError`
  (classified ``worker-crash``) and skipped, so one poison job cannot
  sink the campaign — and because quarantine is an ``error`` record,
  ``--resume`` retries it.  With ``--stall-timeout`` the supervisor
  also SIGKILLs workers whose heartbeat goes stale and recovers them
  through the same path.
* **Backpressure.**  At most ~2x ``--jobs`` experiments are in flight
  at once; a huge campaign holds a bounded window of futures and
  buffered results, not one future per planned experiment.
* **Checkpointing** stays in the parent: worker results are merged in
  *plan order* (a reorder buffer over completion order) and each one
  goes through the same :func:`~repro.resilience.campaign._emit_record`
  path the serial loop uses, so ``checkpoint.write`` faults, atomic
  manifest updates, and ``--resume`` behave exactly as before.
* **Fault injection** is budget-chained.  Faults armed at worker-side
  sites (``exp.before``, ``sim.run``, ``worker.crash``, ...) are
  exported to the workers; while any budget remains, experiments are
  dispatched one at a time in plan order with the full remaining
  budget, and each worker reports back how many times each fault
  actually fired so the parent can decrement.  A worker that dies
  cannot report, so the parent charges the ``worker.crash`` /
  ``worker.stall`` budget itself when it observes the death.  Only when
  every budget is exhausted does dispatch fan out to the full window.
* **Failure accounting.**  A worker task that raises without killing
  its process is recorded with its classified error *and its
  traceback* — never silently dropped.  ``--max-failures N`` arms a
  campaign circuit breaker: once N experiments have ended not-passed,
  dispatch stops (exactly where a serial run would have stopped) and
  the rest stay pending.
* **Verification, telemetry, and narration** behave as before: each
  task carries the campaign's ``--verify`` choice and telemetry flag;
  worker events and metrics stream back and are grafted into the parent
  bus; worker narration is buffered and replayed in plan order.

An ``interrupt``-mode fault (or a worker pressing the metaphorical
Ctrl-C) reports back as ``interrupted``; the parent then flushes the
manifest and exits 130 exactly like the serial path.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback as traceback_module
from contextlib import nullcontext
from typing import TYPE_CHECKING, Any, Callable

from repro.obs.config import telemetry_scope
from repro.obs.exporters import RunTelemetryWriter
from repro.obs.progress import CampaignReporter
from repro.obs.telemetry import DISABLED, Telemetry
from repro.resilience.checkpoint import ExperimentRecord, RunManifest, RunStore
from repro.resilience.errors import WorkerCrashError, as_experiment_error
from repro.resilience.faults import FAULTS, fault_point
from repro.resilience.supervisor import (
    PoolSupervisor,
    SupervisedJob,
    SupervisorPolicy,
    worker_heartbeat,
)

if TYPE_CHECKING:  # imported lazily at runtime to avoid a module cycle
    from repro.resilience.campaign import CampaignConfig

#: Fault sites that fire in the parent process even under ``--jobs``:
#: checkpoints (and every other run-store write) are written by the
#: parent, never by workers — so the io.* budgets chain in the parent
#: exactly as they would in a serial campaign.
PARENT_SITES = (
    "checkpoint.write",
    "io.enospc",
    "io.fsync-fail",
    "io.torn-write",
    "io.corrupt",
)

#: Worker-process fault sites whose firing the parent must account for
#: itself (a dead worker reports nothing back).
CRASH_SITES = ("worker.crash", "worker.stall")


class _BufferReporter:
    """Captures a worker's narration for plan-order replay in the parent.

    Presents the slice of the :class:`CampaignReporter` interface that
    :func:`~repro.resilience.campaign._run_one` uses; each call is
    recorded as ``(method, message)`` and replayed verbatim through the
    campaign's real reporter when the worker's result merges.
    """

    def __init__(self) -> None:
        self.messages: list[tuple[str, str]] = []

    def info(self, message: str) -> None:
        self.messages.append(("info", message))

    def detail(self, message: str) -> None:
        self.messages.append(("detail", message))

    def error(self, message: str) -> None:
        self.messages.append(("error", message))


def _execute_experiment(task: dict[str, Any]) -> dict[str, Any]:
    """Run one experiment inside a worker process.

    Reconstructs the campaign environment the serial driver would give
    the experiment — armed faults, the verify switch, a private
    telemetry handle — runs it through the usual fault-point/watchdog/
    retry stack under the supervisor's heartbeat protocol, and returns
    a picklable result: the experiment record, buffered narration,
    drained telemetry, and per-site fault-fire counts (for the parent's
    budget chaining).
    """
    from repro.resilience.campaign import CampaignConfig, _run_one

    experiment_id = task["experiment_id"]
    # The pool may fork us with the parent's armed faults (or a previous
    # task's leftovers) in module state; the task's spec is authoritative.
    FAULTS.reset()
    armed = {
        spec["site"]: FAULTS.arm(
            spec["site"],
            mode=spec["mode"],
            times=spec["times"],
            message=spec["message"],
        )
        for spec in task["faults"]
    }

    config = CampaignConfig(
        ids=[experiment_id],
        quick=task["quick"],
        timeout_s=task["timeout_s"],
        retry=task["retry"],
        save=False,
        profile=task["profile"],
    )
    obs = Telemetry() if task["telemetry"] else DISABLED
    if task["verify"] is None:
        verify_scope = nullcontext()
    else:
        from repro.verify.config import verification

        verify_scope = verification(task["verify"])
    from repro.trace.store import open_trace_store, trace_store_scope

    # Workers share the parent's store directory: object writes are
    # atomic-and-idempotent and index lines collapse by digest on
    # replay, so concurrent populate races are benign (see TraceStore).
    traces_scope = trace_store_scope(open_trace_store(task.get("trace_store")))

    on_beat = None
    if obs.enabled:
        beat_tid = obs.bus.new_tid()  # own lane: the beat thread races lane 0

        def on_beat() -> None:
            obs.bus.instant(
                "worker.heartbeat", tid=beat_tid, experiment=experiment_id
            )

    reporter = _BufferReporter()
    record: ExperimentRecord | None = None
    interrupted = False
    with worker_heartbeat(task, on_beat=on_beat):
        # Process-level chaos sites fire before the experiment proper:
        # a crash/stall here is what the supervisor must recover from.
        fault_point("worker.slow", experiment_id=experiment_id)
        fault_point("worker.stall", experiment_id=experiment_id)
        fault_point("worker.crash", experiment_id=experiment_id)
        try:
            with verify_scope, telemetry_scope(obs), traces_scope:
                record = _run_one(config, experiment_id, task["runner"], reporter, obs)
        except KeyboardInterrupt:
            interrupted = True

    events: list[dict[str, Any]] = []
    metrics: dict[str, Any] = {}
    if obs.enabled:
        obs.bus.close_all()
        events = obs.bus.drain()
        metrics = obs.metrics.as_dict()
    fired = {
        site: fault.triggered for site, fault in armed.items() if fault.triggered
    }
    FAULTS.reset()
    return {
        "experiment_id": experiment_id,
        "record": record.to_dict() if record is not None else None,
        # The profile payload rides beside the record dict, mirroring how
        # the store persists it beside (not inside) the result file.
        "profile": record.profile if record is not None else None,
        "messages": reporter.messages,
        "events": events,
        "metrics": metrics,
        "fired": fired,
        "interrupted": interrupted,
    }


def _pool_context() -> multiprocessing.context.BaseContext:
    """Prefer ``fork``: workers inherit loaded modules, so any runner the
    parent can call is callable in the worker too."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def _graft_events(
    obs: Telemetry,
    experiment_id: str,
    quick: bool,
    record: ExperimentRecord | None,
    events: list[dict[str, Any]],
) -> None:
    """Splice one worker's drained events into the parent bus.

    The worker's clock starts at its own bus creation, so its timestamps
    are rebased onto the parent clock at merge time; every worker lane
    (including lane 0) maps to a fresh parent lane, and the whole batch
    is wrapped in the same ``exp.<id>`` span the serial driver emits.
    Events are appended raw — the worker closed its spans before
    draining, so each lane arrives balanced and the parent bus's own
    span stacks stay untouched.
    """
    if not obs.enabled:
        return
    bus = obs.bus
    base = bus.now()
    lanes: dict[int, int] = {}

    def lane(worker_tid: int) -> int:
        if worker_tid not in lanes:
            lanes[worker_tid] = bus.new_tid()
        return lanes[worker_tid]

    exp_lane = lane(0)
    bus.events.append(
        {
            "ph": "B",
            "name": f"exp.{experiment_id}",
            "ts": base,
            "tid": exp_lane,
            "args": {"quick": quick, "worker": True},
        }
    )
    last = base
    for event in events:
        grafted = dict(event)
        grafted["ts"] = base + 1 + event.get("ts", 0)
        grafted["tid"] = lane(event.get("tid", 0))
        last = max(last, grafted["ts"])
        bus.events.append(grafted)
    end: dict[str, Any] = {
        "ph": "E",
        "name": f"exp.{experiment_id}",
        "ts": last + 1,
        "tid": exp_lane,
    }
    if record is not None:
        end["args"] = {"status": record.status, "attempts": record.attempts}
    else:
        end["args"] = {"status": "interrupted"}
    bus.events.append(end)


def run_parallel(
    config: "CampaignConfig",
    manifest: RunManifest,
    store: RunStore,
    reporter: CampaignReporter,
    runner: Callable,
    obs: Telemetry,
    writer: RunTelemetryWriter | None,
    persist: bool,
) -> bool:
    """Execute the campaign's remaining experiments across workers.

    Returns ``True`` if the campaign was interrupted (worker-side
    ``interrupt`` fault or parent SIGINT); the caller turns that into
    the usual flush-and-exit-130 path.  Everything else — checkpoints,
    narration, fail-fast, crash recovery, quarantine, the circuit
    breaker — happens here through the same helpers the serial loop
    uses, in plan order.
    """
    from repro.resilience.campaign import _emit_record

    remaining = manifest.remaining()
    total = len(manifest.ids)
    done_before = total - len(remaining)

    # Budget-chained fault handoff: parent-side sites stay armed here;
    # everything else ships to workers, one solo dispatch at a time
    # while any budget remains (see the module docstring).
    specs = FAULTS.export(exclude=PARENT_SITES)
    budgets = {spec["site"]: spec["times"] for spec in specs}
    for spec in specs:
        FAULTS.disarm(spec["site"])

    def live_specs() -> list[dict[str, Any]]:
        return [
            {**spec, "times": budgets[spec["site"]]}
            for spec in specs
            if budgets[spec["site"]] > 0
        ]

    def make_task(experiment_id: str, faults: list[dict[str, Any]]) -> dict[str, Any]:
        return {
            "experiment_id": experiment_id,
            "quick": config.quick,
            "timeout_s": config.timeout_s,
            "retry": config.retry,
            "verify": config.verify,
            "telemetry": obs.enabled,
            "profile": config.profile,
            "trace_store": config.trace_store,
            "faults": faults,
            "runner": runner,
        }

    def chained_payload(job: SupervisedJob) -> dict[str, Any]:
        """Phase-1 payload: ships the live fault budgets of the moment."""
        shipped = live_specs()
        job.meta["shipped"] = [spec["site"] for spec in shipped]
        job.meta.setdefault("started_at", time.perf_counter())
        return make_task(job.experiment_id, shipped)

    def plain_payload(job: SupervisedJob) -> dict[str, Any]:
        """Phase-2 payload: every budget is spent, nothing to ship."""
        job.meta["shipped"] = []
        job.meta.setdefault("started_at", time.perf_counter())
        return make_task(job.experiment_id, [])

    interrupted = False
    stop = False
    failures = 0

    def job_elapsed(job: SupervisedJob) -> float:
        started = job.meta.get("started_at")
        return time.perf_counter() - started if started is not None else 0.0

    def on_crash(job: SupervisedJob, kind: str) -> None:
        """A worker died mid-job (before quarantine is decided)."""
        # The dead worker could not report its fault fires; if we shipped
        # it a crash-site budget, the death *is* the fire — charge it.
        site = "worker.stall" if kind == "stall" else "worker.crash"
        if site in budgets and budgets[site] > 0 and site in job.meta.get("shipped", ()):
            budgets[site] -= 1
            FAULTS.fired_total += 1
        reporter.worker_crash(
            job.experiment_id, job.crashes, config.max_worker_crashes, kind
        )
        if obs.enabled:
            obs.metrics.counter("supervisor.crashes").inc()
            if kind == "stall":
                obs.metrics.counter("supervisor.stalls").inc()
            obs.instant(
                "supervisor.crash",
                experiment=job.experiment_id,
                kind=kind,
                crashes=job.crashes,
            )

    def record_failures(record: ExperimentRecord) -> None:
        """Feed the circuit breaker; trips exactly at --max-failures."""
        nonlocal failures, stop
        if record.status == "passed":
            return
        failures += 1
        if config.fail_fast:
            stop = True
        elif config.max_failures and failures >= config.max_failures:
            reporter.circuit_breaker(failures, config.max_failures)
            if obs.enabled:
                obs.instant("campaign.circuit_breaker", failures=failures)
            stop = True

    def merge_one(job: SupervisedJob, kind: str, value: Any) -> None:
        """Fold one terminal outcome into the campaign, serial-style."""
        nonlocal interrupted
        index = job.index
        experiment_id = job.experiment_id
        reporter.start_experiment(experiment_id, index, total)
        if kind == "quarantined":
            record = ExperimentRecord.from_error(
                experiment_id,
                WorkerCrashError(
                    f"worker process died {job.crashes} time(s) running this "
                    "experiment; quarantined",
                    experiment_id=experiment_id,
                    crashes=job.crashes,
                    kind=value,
                ),
                job_elapsed(job),
                attempts=job.attempts,
            )
            reporter.quarantine(experiment_id, job.crashes)
            if obs.enabled:
                obs.metrics.counter("supervisor.quarantined").inc()
                obs.instant(
                    "supervisor.quarantine",
                    experiment=experiment_id,
                    crashes=job.crashes,
                    kind=value,
                )
            _emit_record(
                config, store, manifest, reporter, obs, writer, persist,
                record, index, total,
            )
            record_failures(record)
            return
        if kind == "failed":
            # The task raised without killing its worker (result
            # unpicklable, harness bug, ...): classify it and keep the
            # traceback instead of dropping both on the floor.
            exc = value
            record = ExperimentRecord.from_error(
                experiment_id,
                as_experiment_error(exc, experiment_id),
                job_elapsed(job),
            )
            if record.error is not None:
                record.error["traceback"] = "".join(
                    traceback_module.format_exception(type(exc), exc, exc.__traceback__)
                ).strip()
            _emit_record(
                config, store, manifest, reporter, obs, writer, persist,
                record, index, total,
            )
            record_failures(record)
            return
        result = value
        for site, count in result["fired"].items():
            if site in budgets:
                budgets[site] = max(0, budgets[site] - count)
            # Mirror the serial invariant: fired_total counts every
            # injected fire in the campaign, wherever it ran.
            FAULTS.fired_total += count
        for method, message in result["messages"]:
            getattr(reporter, method)(message)
        if result["interrupted"]:
            _graft_events(obs, experiment_id, config.quick, None, result["events"])
            if result["metrics"]:
                obs.metrics.merge_payload(result["metrics"])
            interrupted = True
            manifest.interrupted = True
            if persist:
                store.save(manifest)
            return
        record = ExperimentRecord.from_dict(result["record"])
        record.profile = result.get("profile")
        _graft_events(obs, experiment_id, config.quick, record, result["events"])
        if result["metrics"]:
            obs.metrics.merge_payload(result["metrics"])
        _emit_record(
            config, store, manifest, reporter, obs, writer, persist,
            record, index, total,
        )
        record_failures(record)

    # Reorder buffer: outcomes arrive in completion order and merge
    # strictly in plan order, exactly as a serial run would emit them.
    buffered: dict[int, tuple[SupervisedJob, str, Any]] = {}
    next_index = done_before + 1

    def on_outcome(job: SupervisedJob, kind: str, value: Any) -> None:
        nonlocal next_index
        buffered[job.index] = (job, kind, value)
        while next_index in buffered and not (interrupted or stop):
            merge_one(*buffered.pop(next_index))
            next_index += 1

    def should_abort() -> bool:
        return interrupted or stop

    supervisor = PoolSupervisor(
        _execute_experiment,
        SupervisorPolicy(
            jobs=config.jobs,
            max_worker_crashes=config.max_worker_crashes,
            stall_timeout_s=config.stall_timeout_s,
        ),
        mp_context=_pool_context(),
        on_crash=on_crash,
        hb_dir=store.run_dir(manifest.run_id) / ".hb" if persist else None,
    )
    position = 0  # next entry of ``remaining`` to dispatch
    try:
        # Phase 1 — solo dispatch while worker-side fault budget
        # remains, so budgets drain in plan order exactly as serial.
        while (
            position < len(remaining)
            and any(budgets.values())
            and not (interrupted or stop)
        ):
            job = SupervisedJob(
                index=done_before + position + 1,
                experiment_id=remaining[position],
            )
            position += 1
            supervisor.run(
                [job], chained_payload, on_outcome,
                window=1, should_abort=should_abort,
            )

        # Phase 2 — fan out over a bounded in-flight window (~2x jobs);
        # the reorder buffer still merges strictly in plan order.
        fanout = [
            SupervisedJob(
                index=done_before + offset + 1, experiment_id=remaining[offset]
            )
            for offset in range(position, len(remaining))
        ]
        if fanout and not (interrupted or stop):
            supervisor.run(
                fanout, plain_payload, on_outcome, should_abort=should_abort
            )
    except KeyboardInterrupt:
        interrupted = True
        manifest.interrupted = True
        if persist:
            store.save(manifest)
        supervisor.shutdown(wait_for_workers=False)
        return interrupted
    finally:
        if obs.enabled and supervisor.crashes:
            obs.metrics.gauge("supervisor.rebuilds").set(supervisor.rebuilds)
            obs.metrics.gauge("supervisor.crashes_total").set(supervisor.crashes)
    supervisor.shutdown(wait_for_workers=True)
    return interrupted
