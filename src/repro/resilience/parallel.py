"""Parallel campaign execution: ``repro-experiments --jobs N``.

Shards the remaining experiments of a campaign across worker processes
(:class:`concurrent.futures.ProcessPoolExecutor`) while keeping every
observable output — the run manifest, the per-experiment result files,
the summary table, the exit code — byte-identical to a serial run
(timestamps and ``elapsed_s`` aside).  The parent keeps sole ownership
of everything stateful:

* **Checkpointing** stays in the parent: worker results are merged in
  *plan order* (a reorder buffer over completion order) and each one
  goes through the same :func:`~repro.resilience.campaign._emit_record`
  path the serial loop uses, so ``checkpoint.write`` faults, atomic
  manifest updates, and ``--resume`` behave exactly as before.
* **Fault injection** is budget-chained.  Faults armed at worker-side
  sites (``exp.before``, ``sim.run``, ...) are exported to the workers;
  while any budget remains, experiments are dispatched one at a time in
  plan order with the full remaining budget, and each worker reports
  back how many times each fault actually fired so the parent can
  decrement.  Only when every budget is exhausted does dispatch fan out
  to the full ``--jobs`` width.  A serial campaign consumes fault
  budgets strictly in plan order; this reproduces that exactly.
* **Verification and telemetry switches** are process-wide in the
  worker too: each task carries the campaign's ``--verify`` choice and
  telemetry flag, and the worker wraps the experiment in the same
  ``verification(...)`` / ``telemetry_scope(...)`` context managers the
  serial driver uses.
* **Telemetry** streams back: each worker drains its private event bus
  and metrics registry into the task result; the parent grafts the
  events into its own bus under an ``exp.<id>`` span on fresh lanes
  (worker lane *k* maps to a fresh parent ``tid``) and folds the
  metrics in via :meth:`MetricsRegistry.merge_payload`, so
  ``events.jsonl``, ``metrics.json``, and ``trace.json`` cover the whole
  campaign with true span durations.
* **Narration** from inside a worker (retry notes) is buffered and
  replayed through the campaign reporter at merge time, so ``--verbose``
  output reads in plan order, uninterleaved.

An ``interrupt``-mode fault (or a worker pressing the metaphorical
Ctrl-C) reports back as ``interrupted``; the parent then flushes the
manifest and exits 130 exactly like the serial path.  A worker process
that dies outright (OOM kill, segfault) surfaces as an ``error`` record
for its experiment — graceful degradation, not a crashed campaign.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from contextlib import nullcontext
from typing import TYPE_CHECKING, Any, Callable

from repro.obs.config import telemetry_scope
from repro.obs.exporters import RunTelemetryWriter
from repro.obs.progress import CampaignReporter
from repro.obs.telemetry import DISABLED, Telemetry
from repro.resilience.checkpoint import ExperimentRecord, RunManifest, RunStore
from repro.resilience.faults import FAULTS

if TYPE_CHECKING:  # imported lazily at runtime to avoid a module cycle
    from repro.resilience.campaign import CampaignConfig

#: Fault sites that fire in the parent process even under ``--jobs``:
#: checkpoints are written by the parent, never by workers.
PARENT_SITES = ("checkpoint.write",)


class _BufferReporter:
    """Captures a worker's narration for plan-order replay in the parent.

    Presents the slice of the :class:`CampaignReporter` interface that
    :func:`~repro.resilience.campaign._run_one` uses; each call is
    recorded as ``(method, message)`` and replayed verbatim through the
    campaign's real reporter when the worker's result merges.
    """

    def __init__(self) -> None:
        self.messages: list[tuple[str, str]] = []

    def info(self, message: str) -> None:
        self.messages.append(("info", message))

    def detail(self, message: str) -> None:
        self.messages.append(("detail", message))

    def error(self, message: str) -> None:
        self.messages.append(("error", message))


def _execute_experiment(task: dict[str, Any]) -> dict[str, Any]:
    """Run one experiment inside a worker process.

    Reconstructs the campaign environment the serial driver would give
    the experiment — armed faults, the verify switch, a private
    telemetry handle — runs it through the usual fault-point/watchdog/
    retry stack, and returns a picklable result: the experiment record,
    buffered narration, drained telemetry, and per-site fault-fire
    counts (for the parent's budget chaining).
    """
    from repro.resilience.campaign import CampaignConfig, _run_one

    # The pool may fork us with the parent's armed faults (or a previous
    # task's leftovers) in module state; the task's spec is authoritative.
    FAULTS.reset()
    armed = {
        spec["site"]: FAULTS.arm(
            spec["site"],
            mode=spec["mode"],
            times=spec["times"],
            message=spec["message"],
        )
        for spec in task["faults"]
    }

    config = CampaignConfig(
        ids=[task["experiment_id"]],
        quick=task["quick"],
        timeout_s=task["timeout_s"],
        retry=task["retry"],
        save=False,
    )
    obs = Telemetry() if task["telemetry"] else DISABLED
    if task["verify"] is None:
        verify_scope = nullcontext()
    else:
        from repro.verify.config import verification

        verify_scope = verification(task["verify"])

    reporter = _BufferReporter()
    record: ExperimentRecord | None = None
    interrupted = False
    try:
        with verify_scope, telemetry_scope(obs):
            record = _run_one(
                config, task["experiment_id"], task["runner"], reporter, obs
            )
    except KeyboardInterrupt:
        interrupted = True

    events: list[dict[str, Any]] = []
    metrics: dict[str, Any] = {}
    if obs.enabled:
        obs.bus.close_all()
        events = obs.bus.drain()
        metrics = obs.metrics.as_dict()
    fired = {
        site: fault.triggered for site, fault in armed.items() if fault.triggered
    }
    FAULTS.reset()
    return {
        "experiment_id": task["experiment_id"],
        "record": record.to_dict() if record is not None else None,
        "messages": reporter.messages,
        "events": events,
        "metrics": metrics,
        "fired": fired,
        "interrupted": interrupted,
    }


def _pool_context() -> multiprocessing.context.BaseContext:
    """Prefer ``fork``: workers inherit loaded modules, so any runner the
    parent can call is callable in the worker too."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def _graft_events(
    obs: Telemetry,
    experiment_id: str,
    quick: bool,
    record: ExperimentRecord | None,
    events: list[dict[str, Any]],
) -> None:
    """Splice one worker's drained events into the parent bus.

    The worker's clock starts at its own bus creation, so its timestamps
    are rebased onto the parent clock at merge time; every worker lane
    (including lane 0) maps to a fresh parent lane, and the whole batch
    is wrapped in the same ``exp.<id>`` span the serial driver emits.
    Events are appended raw — the worker closed its spans before
    draining, so each lane arrives balanced and the parent bus's own
    span stacks stay untouched.
    """
    if not obs.enabled:
        return
    bus = obs.bus
    base = bus.now()
    lanes: dict[int, int] = {}

    def lane(worker_tid: int) -> int:
        if worker_tid not in lanes:
            lanes[worker_tid] = bus.new_tid()
        return lanes[worker_tid]

    exp_lane = lane(0)
    bus.events.append(
        {
            "ph": "B",
            "name": f"exp.{experiment_id}",
            "ts": base,
            "tid": exp_lane,
            "args": {"quick": quick, "worker": True},
        }
    )
    last = base
    for event in events:
        grafted = dict(event)
        grafted["ts"] = base + 1 + event.get("ts", 0)
        grafted["tid"] = lane(event.get("tid", 0))
        last = max(last, grafted["ts"])
        bus.events.append(grafted)
    end: dict[str, Any] = {
        "ph": "E",
        "name": f"exp.{experiment_id}",
        "ts": last + 1,
        "tid": exp_lane,
    }
    if record is not None:
        end["args"] = {"status": record.status, "attempts": record.attempts}
    else:
        end["args"] = {"status": "interrupted"}
    bus.events.append(end)


def run_parallel(
    config: "CampaignConfig",
    manifest: RunManifest,
    store: RunStore,
    reporter: CampaignReporter,
    runner: Callable,
    obs: Telemetry,
    writer: RunTelemetryWriter | None,
    persist: bool,
) -> bool:
    """Execute the campaign's remaining experiments across workers.

    Returns ``True`` if the campaign was interrupted (worker-side
    ``interrupt`` fault or parent SIGINT); the caller turns that into
    the usual flush-and-exit-130 path.  Everything else — checkpoints,
    narration, fail-fast — happens here through the same helpers the
    serial loop uses, in plan order.
    """
    from repro.resilience.campaign import _emit_record

    remaining = manifest.remaining()
    total = len(manifest.ids)
    done_before = total - len(remaining)

    # Budget-chained fault handoff: parent-side sites stay armed here;
    # everything else ships to workers, one solo dispatch at a time
    # while any budget remains (see the module docstring).
    specs = FAULTS.export(exclude=PARENT_SITES)
    budgets = {spec["site"]: spec["times"] for spec in specs}
    for spec in specs:
        FAULTS.disarm(spec["site"])

    def live_specs() -> list[dict[str, Any]]:
        return [
            {**spec, "times": budgets[spec["site"]]}
            for spec in specs
            if budgets[spec["site"]] > 0
        ]

    def make_task(experiment_id: str, faults: list[dict[str, Any]]) -> dict[str, Any]:
        return {
            "experiment_id": experiment_id,
            "quick": config.quick,
            "timeout_s": config.timeout_s,
            "retry": config.retry,
            "verify": config.verify,
            "telemetry": obs.enabled,
            "faults": faults,
            "runner": runner,
        }

    interrupted = False
    stop = False

    def merge(result: dict[str, Any] | None, index: int) -> None:
        """Fold one worker result into the campaign, serial-style."""
        nonlocal interrupted, stop
        experiment_id = remaining[index - done_before - 1]
        reporter.start_experiment(experiment_id, index, total)
        if result is None:  # worker process died (not a task exception)
            record = ExperimentRecord.from_error(
                experiment_id,
                RuntimeError("worker process died before returning a result"),
                0.0,
            )
            _emit_record(
                config, store, manifest, reporter, obs, writer, persist,
                record, index, total,
            )
            if config.fail_fast:
                stop = True
            return
        for site, count in result["fired"].items():
            if site in budgets:
                budgets[site] = max(0, budgets[site] - count)
            # Mirror the serial invariant: fired_total counts every
            # injected fire in the campaign, wherever it ran.
            FAULTS.fired_total += count
        for method, message in result["messages"]:
            getattr(reporter, method)(message)
        if result["interrupted"]:
            _graft_events(obs, experiment_id, config.quick, None, result["events"])
            if result["metrics"]:
                obs.metrics.merge_payload(result["metrics"])
            interrupted = True
            manifest.interrupted = True
            if persist:
                store.save(manifest)
            return
        record = ExperimentRecord.from_dict(result["record"])
        _graft_events(obs, experiment_id, config.quick, record, result["events"])
        if result["metrics"]:
            obs.metrics.merge_payload(result["metrics"])
        _emit_record(
            config, store, manifest, reporter, obs, writer, persist,
            record, index, total,
        )
        if config.fail_fast and record.status != "passed":
            stop = True

    position = 0  # next entry of ``remaining`` to dispatch
    pool = ProcessPoolExecutor(max_workers=config.jobs, mp_context=_pool_context())
    try:
        # Phase 1 — solo dispatch while worker-side fault budget
        # remains, so budgets drain in plan order exactly as serial.
        while (
            position < len(remaining)
            and any(budgets.values())
            and not (interrupted or stop)
        ):
            experiment_id = remaining[position]
            future = pool.submit(
                _execute_experiment, make_task(experiment_id, live_specs())
            )
            position += 1
            try:
                result = future.result()
            except Exception:
                result = None
            merge(result, done_before + position)

        # Phase 2 — full fan-out for everything left.  Completion order
        # is arbitrary; a reorder buffer merges strictly in plan order.
        futures: dict[Future, int] = {}
        if not (interrupted or stop):
            for offset in range(position, len(remaining)):
                future = pool.submit(
                    _execute_experiment, make_task(remaining[offset], [])
                )
                futures[future] = done_before + offset + 1
        results: dict[int, dict[str, Any] | None] = {}
        next_index = min(futures.values()) if futures else 0
        pending = set(futures)
        while pending and not (interrupted or stop):
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                try:
                    results[futures[future]] = future.result()
                except Exception:
                    results[futures[future]] = None
            while next_index in results and not (interrupted or stop):
                merge(results.pop(next_index), next_index)
                next_index += 1
        if stop:
            for future in pending:
                future.cancel()
    except KeyboardInterrupt:
        interrupted = True
        manifest.interrupted = True
        if persist:
            store.save(manifest)
        pool.shutdown(wait=False, cancel_futures=True)
        return interrupted
    pool.shutdown(wait=True, cancel_futures=True)
    return interrupted
