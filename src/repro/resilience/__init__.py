"""Resilience layer: structured errors, checkpoints, retries, fault injection.

Long simulation campaigns (``repro-experiments`` runs a dozen tables and
figures back to back) need to survive a single bad experiment, a hung
simulation, or an interrupted terminal without losing completed work.
This package provides the four pieces the experiment stack composes:

* :mod:`repro.resilience.errors` — the ``ReproError`` hierarchy carrying
  experiment/machine/program context instead of bare tracebacks;
* :mod:`repro.resilience.checkpoint` — atomic per-run manifests under
  ``runs/<run-id>/`` enabling ``repro-experiments --resume``, backed by
  the checksummed append-only journal in
  :mod:`repro.resilience.journal` (torn or corrupt manifests are
  *salvaged*, not fatal) and audited/repaired offline by
  :mod:`repro.resilience.doctor` (``repro-doctor``);
* :mod:`repro.resilience.retry` — bounded retry-with-backoff and a
  watchdog timeout for wedged experiments;
* :mod:`repro.resilience.faults` — a deterministic fault-injection
  harness that arms failures at named sites so the tests can prove the
  retry/degradation/resume paths actually work, including process-level
  chaos sites (``worker.crash``/``worker.stall``/``worker.slow``);
* :mod:`repro.resilience.supervisor` — a supervised worker pool for
  ``--jobs`` campaigns: crash detection with pool rebuild and orphan
  resubmission, heartbeat-based stall detection, and poison-job
  quarantine (``WorkerCrashError``, classified ``worker-crash``).

The campaign driver that ties them together lives in
:mod:`repro.resilience.campaign` (imported on demand by the CLI, not
here, to keep this package import-light for the low-level layers that
only need the exception types).
"""

from repro.resilience.checkpoint import ExperimentRecord, RunManifest, RunStore
from repro.resilience.errors import (
    CheckpointError,
    ConfigError,
    ExperimentError,
    ExperimentTimeout,
    FaultInjected,
    ReproError,
    SimulationError,
    StoreCorruptionError,
    WorkerCrashError,
    classify_error,
)
from repro.resilience.faults import FAULTS, FaultInjector, fault_point
from repro.resilience.retry import RetryPolicy, call_with_retry, watchdog
from repro.resilience.supervisor import (
    PoolSupervisor,
    SupervisedJob,
    SupervisorPolicy,
)

__all__ = [
    "CheckpointError",
    "ConfigError",
    "ExperimentError",
    "ExperimentRecord",
    "ExperimentTimeout",
    "FAULTS",
    "FaultInjected",
    "FaultInjector",
    "PoolSupervisor",
    "ReproError",
    "RetryPolicy",
    "RunManifest",
    "RunStore",
    "SimulationError",
    "StoreCorruptionError",
    "SupervisedJob",
    "SupervisorPolicy",
    "WorkerCrashError",
    "call_with_retry",
    "classify_error",
    "fault_point",
    "watchdog",
]
