"""Memory substrate: a virtual address space, allocator, and array handles.

The paper's scheduler works on *addresses*: the hints passed to ``th_fork``
are the virtual addresses of the data a thread will touch, and the cache
simulator consumes address traces.  This package provides the pieces that
make addresses meaningful in the reproduction:

* :class:`AddressSpace` — a bump allocator handing out non-overlapping,
  aligned regions of a virtual address space.
* :class:`Layout` — row-major (C) versus column-major (Fortran) order.
* :class:`ArrayHandle` — a named 1-D/2-D array bound to a base address,
  translating indices to addresses and rows/columns/tiles to strided
  reference segments.
"""

from repro.mem.allocator import Allocation, AddressSpace
from repro.mem.arrays import ArrayHandle
from repro.mem.layout import Layout

__all__ = ["Allocation", "AddressSpace", "ArrayHandle", "Layout"]
