"""Array storage layouts.

The paper's first three applications are Fortran (column-major); N-body is
C (row-major).  Section 4 notes "Either layout works with our scheduler" —
the layout only changes which index is contiguous in memory, which in turn
changes which traversal is cache-friendly.
"""

from __future__ import annotations

import enum


class Layout(enum.Enum):
    """Storage order of a 2-D array."""

    ROW_MAJOR = "row-major"
    COLUMN_MAJOR = "column-major"

    def strides(self, rows: int, cols: int, element_size: int) -> tuple[int, int]:
        """Byte strides ``(row_stride, col_stride)`` for a ``rows x cols`` array.

        ``row_stride`` is the byte distance between ``A[i, j]`` and
        ``A[i+1, j]``; ``col_stride`` between ``A[i, j]`` and ``A[i, j+1]``.
        """
        if self is Layout.ROW_MAJOR:
            return cols * element_size, element_size
        return element_size, rows * element_size

    @property
    def contiguous_axis(self) -> int:
        """The axis along which consecutive elements are adjacent in memory.

        Axis 0 is the row index ``i``, axis 1 the column index ``j``.  For
        column-major storage, walking down a column (varying ``i``) is
        contiguous, so the contiguous axis is 0.
        """
        return 0 if self is Layout.COLUMN_MAJOR else 1
