"""A bump allocator over a simulated virtual address space.

Every traced program allocates its arrays from one :class:`AddressSpace` so
that (a) addresses are unique and non-overlapping, (b) the scheduler's
address hints and the cache simulator's trace refer to the same coordinate
system, and (c) page-level placement is deterministic and reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import require_positive, require_power_of_two


@dataclass(frozen=True)
class Allocation:
    """A named, contiguous region of the simulated address space."""

    name: str
    base: int
    size: int

    @property
    def end(self) -> int:
        """One past the last byte of the region."""
        return self.base + self.size

    def contains(self, address: int) -> bool:
        """Whether ``address`` falls inside this region."""
        return self.base <= address < self.end


class AddressSpace:
    """Hands out aligned, non-overlapping regions of a virtual address space.

    Parameters
    ----------
    base:
        The first address available for allocation.  Defaults to 0x10000,
        leaving a low guard region so that address 0 is never valid data
        (the thread package uses hint value 0 to mean "no hint").
    alignment:
        Every allocation's base is rounded up to this power-of-two boundary.
        Defaults to 128 bytes — the L2 line size of both paper machines —
        so distinct arrays never share a cache line.
    stagger:
        Extra bytes inserted between consecutive allocations.  At the
        scaled cache sizes used by the experiments, equal-sized arrays
        allocated back to back would alias the same cache sets exactly —
        an artifact real programs avoid through allocator headers, page
        placement, and non-power-of-two array extents.  A small stagger
        (a few cache lines) restores realistic set spreading; see
        DESIGN.md.  Defaults to 0 (dense packing).
    """

    def __init__(
        self, base: int = 0x10000, alignment: int = 128, stagger: int = 0
    ) -> None:
        require_power_of_two(alignment, "alignment")
        if base < 0:
            raise ValueError(f"base must be non-negative, got {base!r}")
        if stagger < 0:
            raise ValueError(f"stagger must be non-negative, got {stagger!r}")
        self.alignment = alignment
        self.stagger = stagger
        #: First allocatable address; everything below is the guard
        #: region (hint/address validity checks compare against this).
        self.base = self._align(base)
        self._next = self.base
        self._allocations: dict[str, Allocation] = {}

    def _align(self, address: int) -> int:
        mask = self.alignment - 1
        return (address + mask) & ~mask

    def allocate(self, name: str, size: int) -> Allocation:
        """Reserve ``size`` bytes under ``name`` and return the region.

        Names must be unique within the space; reallocating a name is almost
        always a bug in a traced program, so it raises.
        """
        require_positive(size, "size")
        if name in self._allocations:
            raise ValueError(f"allocation name {name!r} already in use")
        base = self._align(self._next)
        allocation = Allocation(name=name, base=base, size=size)
        self._next = base + size + self.stagger
        self._allocations[name] = allocation
        return allocation

    def __getitem__(self, name: str) -> Allocation:
        return self._allocations[name]

    def __contains__(self, name: str) -> bool:
        return name in self._allocations

    @property
    def allocations(self) -> list[Allocation]:
        """All regions in allocation order."""
        return list(self._allocations.values())

    @property
    def bytes_allocated(self) -> int:
        """Total bytes handed out, excluding alignment padding."""
        return sum(a.size for a in self._allocations.values())

    @property
    def high_water_mark(self) -> int:
        """The next free address (end of the used portion of the space)."""
        return self._next

    def owner_of(self, address: int) -> Allocation | None:
        """The allocation containing ``address``, or ``None``.

        Linear scan — meant for debugging and tests, not hot paths.
        """
        for allocation in self._allocations.values():
            if allocation.contains(address):
                return allocation
        return None
