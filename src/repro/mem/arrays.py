"""Array handles: named arrays bound to simulated addresses.

An :class:`ArrayHandle` couples a region of the simulated address space
with a shape, an element size, and a :class:`~repro.mem.layout.Layout`.
Traced programs use handles for two things:

* computing the *hint* addresses passed to ``th_fork`` (e.g. the base
  address of column ``i`` of matrix ``A``), and
* describing the memory references an inner loop performs, as strided
  segments that the trace layer records and the cache simulator consumes.

Indices are 0-based (Python convention); the paper's pseudo-code is
1-based Fortran, so its ``A[1, i]`` corresponds to ``handle.addr(0, i-1)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mem.layout import Layout
from repro.util.validation import require_positive


@dataclass(frozen=True)
class RefSegment:
    """A strided run of element references: ``base, base+stride, ...``.

    ``count`` elements of ``element_size`` bytes each, ``stride`` bytes
    apart.  A contiguous vector is ``stride == element_size``; a row walk
    of a column-major matrix has ``stride == rows * element_size``.
    """

    base: int
    stride: int
    count: int
    element_size: int

    def __post_init__(self) -> None:
        require_positive(self.count, "count")
        require_positive(self.element_size, "element_size")

    @property
    def last_address(self) -> int:
        """Address of the first byte of the final element."""
        return self.base + self.stride * (self.count - 1)

    @property
    def bytes_touched(self) -> int:
        """Total distinct bytes referenced (assuming non-overlapping steps)."""
        if self.stride == 0:
            return self.element_size
        return min(abs(self.stride), self.element_size) * (self.count - 1) + self.element_size


class ArrayHandle:
    """A 1-D or 2-D array living at a fixed simulated address.

    Parameters
    ----------
    name:
        Debug name (usually the allocation name).
    base:
        Base byte address of element ``[0]`` / ``[0, 0]``.
    shape:
        ``(n,)`` for vectors or ``(rows, cols)`` for matrices.
    element_size:
        Bytes per element (8 for the paper's double-precision data).
    layout:
        Storage order; only meaningful for 2-D arrays.
    """

    def __init__(
        self,
        name: str,
        base: int,
        shape: tuple[int, ...],
        element_size: int = 8,
        layout: Layout = Layout.COLUMN_MAJOR,
    ) -> None:
        require_positive(element_size, "element_size")
        if len(shape) not in (1, 2):
            raise ValueError(f"shape must be 1-D or 2-D, got {shape!r}")
        for dim in shape:
            require_positive(dim, "shape dimension")
        self.name = name
        self.base = base
        self.shape = tuple(shape)
        self.element_size = element_size
        self.layout = layout
        if len(shape) == 2:
            self._row_stride, self._col_stride = layout.strides(
                shape[0], shape[1], element_size
            )
        else:
            self._row_stride, self._col_stride = element_size, 0

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def size_bytes(self) -> int:
        """Total storage of the array in bytes."""
        total = self.element_size
        for dim in self.shape:
            total *= dim
        return total

    @property
    def element_count(self) -> int:
        count = 1
        for dim in self.shape:
            count *= dim
        return count

    @property
    def row_stride(self) -> int:
        """Byte distance between ``[i, j]`` and ``[i+1, j]``."""
        return self._row_stride

    @property
    def col_stride(self) -> int:
        """Byte distance between ``[i, j]`` and ``[i, j+1]``."""
        return self._col_stride

    # ------------------------------------------------------------------
    # Address computation
    # ------------------------------------------------------------------
    def addr(self, i: int, j: int | None = None) -> int:
        """Byte address of element ``[i]`` (1-D) or ``[i, j]`` (2-D)."""
        if self.ndim == 1:
            if j is not None:
                raise ValueError(f"{self.name} is 1-D; got two indices")
            self._check_index(i, 0)
            return self.base + i * self._row_stride
        if j is None:
            raise ValueError(f"{self.name} is 2-D; got one index")
        self._check_index(i, 0)
        self._check_index(j, 1)
        return self.base + i * self._row_stride + j * self._col_stride

    def _check_index(self, index: int, axis: int) -> None:
        if not 0 <= index < self.shape[axis]:
            raise IndexError(
                f"index {index} out of range for axis {axis} of {self.name} "
                f"(shape {self.shape})"
            )

    # ------------------------------------------------------------------
    # Reference-segment builders
    # ------------------------------------------------------------------
    def element(self, i: int, j: int | None = None, count: int = 1) -> RefSegment:
        """A segment referencing one element ``count`` times (stride 0)."""
        return RefSegment(
            base=self.addr(i, j), stride=0, count=count, element_size=self.element_size
        )

    def vector(
        self, start: int = 0, count: int | None = None, step: int = 1
    ) -> RefSegment:
        """A walk of a 1-D array from ``start``, every ``step`` elements."""
        if self.ndim != 1:
            raise ValueError(f"{self.name} is 2-D; use row()/column()")
        if count is None:
            count = (self.shape[0] - start + step - 1) // step
        self._check_span(start, count, 0, step)
        return RefSegment(
            base=self.addr(start),
            stride=self._row_stride * step,
            count=count,
            element_size=self.element_size,
        )

    def column(
        self, j: int, start: int = 0, count: int | None = None, step: int = 1
    ) -> RefSegment:
        """A walk down column ``j``: elements ``[start::step, j]``.

        ``step > 1`` models red-black (checkerboard) sweeps.
        """
        self._require_2d()
        if count is None:
            count = (self.shape[0] - start + step - 1) // step
        self._check_span(start, count, 0, step)
        return RefSegment(
            base=self.addr(start, j),
            stride=self._row_stride * step,
            count=count,
            element_size=self.element_size,
        )

    def row(
        self, i: int, start: int = 0, count: int | None = None, step: int = 1
    ) -> RefSegment:
        """A walk along row ``i``: elements ``[i, start::step]``."""
        self._require_2d()
        if count is None:
            count = (self.shape[1] - start + step - 1) // step
        self._check_span(start, count, 1, step)
        return RefSegment(
            base=self.addr(i, start),
            stride=self._col_stride * step,
            count=count,
            element_size=self.element_size,
        )

    def column_base(self, j: int) -> int:
        """Address of the first element of column ``j`` — the natural 2-D hint
        for Fortran programs (the paper passes ``A[1, i]`` and ``B[1, j]``)."""
        return self.addr(0, j)

    def row_base(self, i: int) -> int:
        """Address of the first element of row ``i``."""
        return self.addr(i, 0)

    def _require_2d(self) -> None:
        if self.ndim != 2:
            raise ValueError(f"{self.name} is 1-D; use vector()")

    def _check_span(self, start: int, count: int, axis: int, step: int = 1) -> None:
        require_positive(count, "count")
        require_positive(step, "step")
        self._check_index(start, axis)
        self._check_index(start + (count - 1) * step, axis)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ArrayHandle({self.name!r}, base=0x{self.base:x}, shape={self.shape}, "
            f"element_size={self.element_size}, layout={self.layout.value})"
        )
