"""Virtual-to-physical page mapping for physically-indexed caches.

Section 2.2 of the paper: "Second-level caches are often physically
indexed, while the addresses associated with the threads are virtual
addresses.  Past research has shown that the virtual-to-physical memory
mapping maintained by the virtual memory system can significantly
affect second-level cache behavior [8]" — and Section 6 lists working
with virtual addresses as a limitation of the paper's own simulations.

This module supplies the missing layer: page mappers that translate the
simulated virtual line stream into physical lines before it reaches the
L2.  Three policies span the design space studied by Kessler & Hill
("Page Placement Algorithms for Large Real-Indexed Caches", the paper's
reference [27]):

* :class:`IdentityMapper` — physical == virtual (what the paper's own
  DineroIII runs effectively assumed);
* :class:`RandomMapper` — each page gets a random frame on first touch:
  the pessimal-but-common case of an OS that ignores cache colour;
* :class:`ColoredMapper` — frames preserve the virtual page colour
  (Kessler & Hill's page colouring), making the physical index behave
  like the virtual one.
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import require_power_of_two


class PageMapper:
    """Base: translate cache-line numbers through a page table.

    ``page_size`` must be a power of two no smaller than the cache line
    being translated.  Mappers are *lazy*: frames are assigned on first
    touch, so only pages the program uses consume state.
    """

    def __init__(self, page_size: int = 4096) -> None:
        require_power_of_two(page_size, "page_size")
        self.page_size = page_size
        self.page_bits = page_size.bit_length() - 1

    def frame_of(self, vpage: int) -> int:
        """Physical frame number for virtual page ``vpage``."""
        raise NotImplementedError

    def translate_line(self, line: int, line_bits: int) -> int:
        """Translate a virtual line number into a physical line number."""
        offset_bits = self.page_bits - line_bits
        if offset_bits < 0:
            raise ValueError(
                f"page size {self.page_size} smaller than the cache line "
                f"({1 << line_bits})"
            )
        vpage = line >> offset_bits
        offset = line & ((1 << offset_bits) - 1)
        return (self.frame_of(vpage) << offset_bits) | offset

    @property
    def pages_touched(self) -> int:
        return 0


class IdentityMapper(PageMapper):
    """Physical address == virtual address."""

    def frame_of(self, vpage: int) -> int:
        return vpage

    def translate_line(self, line: int, line_bits: int) -> int:
        return line


class RandomMapper(PageMapper):
    """Random frame per page, assigned on first touch.

    Models an OS free list with no cache awareness: two virtual pages
    that would index disjoint cache sets can land on the same colour,
    and vice versa.
    """

    def __init__(self, page_size: int = 4096, seed: int = 0) -> None:
        super().__init__(page_size)
        self._rng = np.random.default_rng(seed)
        self._frames: dict[int, int] = {}
        self._used: set[int] = set()

    def frame_of(self, vpage: int) -> int:
        frame = self._frames.get(vpage)
        if frame is None:
            # Distinct pages get distinct frames (one process, no
            # sharing); colours are uniform because frames are uniform.
            frame = int(self._rng.integers(0, 1 << 24))
            while frame in self._used:
                frame = int(self._rng.integers(0, 1 << 24))
            self._used.add(frame)
            self._frames[vpage] = frame
        return frame

    @property
    def pages_touched(self) -> int:
        return len(self._frames)


class ColoredMapper(PageMapper):
    """Page colouring: the frame preserves the virtual page's colour.

    ``colors`` is the number of page colours the cache has
    (``cache_size / (associativity * page_size)``); frames are assigned
    sequentially within each colour class, so distinct virtual pages of
    one colour get distinct frames of the same colour — exactly
    Kessler & Hill's "page coloring" policy.
    """

    def __init__(self, page_size: int = 4096, colors: int = 16) -> None:
        super().__init__(page_size)
        require_power_of_two(colors, "colors")
        self.colors = colors
        self._frames: dict[int, int] = {}
        self._next_in_color: dict[int, int] = {}

    def frame_of(self, vpage: int) -> int:
        frame = self._frames.get(vpage)
        if frame is None:
            color = vpage & (self.colors - 1)
            index = self._next_in_color.get(color, 0)
            self._next_in_color[color] = index + 1
            frame = index * self.colors + color
            self._frames[vpage] = frame
        return frame

    @property
    def pages_touched(self) -> int:
        return len(self._frames)


def colors_of(cache_size: int, associativity: int, page_size: int) -> int:
    """How many page colours a physically-indexed cache has."""
    colors = cache_size // (associativity * page_size)
    return max(1, colors)
