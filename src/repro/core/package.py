"""The thread package: ``th_init`` / ``th_fork`` / ``th_run`` (Section 3).

``ThreadPackage`` is the user-facing object.  Untraced, it is a small,
fast scheduler you can drive from plain Python (that mode backs the
Table 1 overhead micro-benchmark and the examples).  Given a
:class:`~repro.trace.recorder.TraceRecorder` and an
:class:`~repro.mem.allocator.AddressSpace`, it additionally simulates its
own memory behaviour — thread records streaming through the cache, hash
probes, bin headers — which is what makes the threaded versions' extra
compulsory misses in the paper's Table 3 appear in the reproduction too.

The user interface follows the paper exactly:

* ``th_init(block_size, hash_size)`` — set block dimension size and hash
  table size; 0 selects the configuration-dependent default.
* ``th_fork(func, arg1, arg2, hint1, hint2, hint3)`` — create and
  schedule a thread to call ``func(arg1, arg2)``; unused hints are 0.
* ``th_run(keep)`` — run every scheduled thread, bin by bin; destroy the
  thread specifications unless ``keep`` is true.

There are no thread handles and no blocking: threads run to completion
on the caller's stack, in ready-list order.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.core.bins import BinTable
from repro.core.hints import HintVector
from repro.core.policies import TraversalPolicy, resolve_policy
from repro.core.scheduler import (
    DEFAULT_HASH_SIZE,
    LocalityScheduler,
    default_block_size,
)
from repro.core.stats import SchedulingStats, next_run_seq
from repro.core.thread import ThreadGroup, ThreadSpec
from repro.mem.allocator import AddressSpace
from repro.mem.arrays import RefSegment
from repro.obs.telemetry import DISABLED, Telemetry
from repro.trace.costmodel import DEFAULT_THREAD_COSTS, ThreadCostModel
from repro.trace.recorder import TraceRecorder


class ThreadPackage:
    """A locality-scheduling, run-to-completion thread package.

    Parameters
    ----------
    l2_size:
        Second-level cache size in bytes; the source of the default block
        dimension size (``l2_size / 2``, the value used by every 2-D
        experiment in the paper).
    block_size, hash_size:
        Initial scheduler configuration; 0 selects defaults, as in
        ``th_init``.
    fold_symmetric:
        Place (hi, hj) and (hj, hi) threads in the same bin.
    policy:
        Bin traversal order for ``th_run``; the paper's order is
        ``"creation"``.
    recorder, address_space, costs:
        When both ``recorder`` and ``address_space`` are given the
        package traces its own instructions and memory references.
    obs:
        Observability handle (``repro.obs``); the disabled singleton by
        default.  When enabled the package emits spans for fork batches
        and bin sweeps and populates the scheduler metrics (fork and
        dispatch counters, bin-occupancy histogram).
    """

    def __init__(
        self,
        l2_size: int,
        block_size: int = 0,
        hash_size: int = 0,
        fold_symmetric: bool = False,
        policy: str | TraversalPolicy = "creation",
        recorder: TraceRecorder | None = None,
        address_space: AddressSpace | None = None,
        costs: ThreadCostModel = DEFAULT_THREAD_COSTS,
        obs: Telemetry = DISABLED,
    ) -> None:
        if (recorder is None) != (address_space is None):
            raise ValueError(
                "tracing needs both recorder and address_space (or neither)"
            )
        if l2_size <= 0:
            raise ValueError(f"l2_size must be positive, got {l2_size}")
        self.l2_size = l2_size
        self.fold_symmetric = fold_symmetric
        self.policy = resolve_policy(policy)
        self.recorder = recorder
        self.space = address_space
        self.costs = costs
        self.obs = obs
        #: Telemetry lane for this package's spans (fork batches of two
        #: packages may overlap in time; separate lanes keep each lane's
        #: begin/end events properly nested).
        self._obs_tid = obs.bus.new_tid() if obs.enabled else 0
        self._fork_batch_open = False
        self._run_seq = 0
        self._forks_reported = 0
        self._dispatches_reported = 0
        self._running = False
        self._total_forks = 0
        self._total_dispatches = 0
        self._alloc_seq = 0
        #: Optional :class:`repro.verify.scheduler_oracle.SchedulerOracle`;
        #: attach with :meth:`attach_oracle`.  ``None`` keeps every hook a
        #: single attribute test.
        self.oracle = None
        #: Optional :class:`repro.obs.profile.LocalityProfiler`; attached
        #: by ``SimContext`` when profiling is on.  The package only tells
        #: it which bin sweep and fork site are dispatching — the cache
        #: hierarchy does the actual charging.  ``None`` keeps dispatch at
        #: one attribute test.
        self.profiler = None
        self.run_history: list[SchedulingStats] = []
        self._hash_base: int | None = None
        self.scheduler: LocalityScheduler
        self.table: BinTable
        self.th_init(block_size, hash_size)

    # ------------------------------------------------------------------
    # th_init
    # ------------------------------------------------------------------
    def th_init(self, block_size: int = 0, hash_size: int = 0) -> None:
        """Set the block dimension size and hash table size.

        May be called again to change the sizes, but only while no
        threads are scheduled (re-binning forked threads is not part of
        the paper's interface).  Passing 0 selects the defaults:
        ``l2_size / 2`` for the block dimension and 64 hash entries per
        dimension.
        """
        if getattr(self, "table", None) is not None and self.pending_threads:
            raise RuntimeError("cannot th_init while threads are scheduled")
        if block_size == 0:
            block_size = default_block_size(self.l2_size, dims=2)
        if hash_size == 0:
            hash_size = DEFAULT_HASH_SIZE
        self.scheduler = LocalityScheduler(
            block_size, hash_size, fold=self.fold_symmetric
        )
        self.table = BinTable(self.scheduler, self.costs.group_capacity)
        if getattr(self, "oracle", None) is not None:
            self.table.on_allocate = self.oracle.on_bin_allocated
        if self.space is not None and self._hash_base is None:
            entries = hash_size ** 3
            # The C package's table is hash_size^3 pointers; cap the
            # simulated region at 16 MB of address space (virtual only --
            # just the probed entries ever reach the cache simulator).
            name = "th_hash_table"
            if name in self.space:
                # A second package in the same simulated address space.
                suffix = 2
                while f"{name}_{suffix}" in self.space:
                    suffix += 1
                name = f"{name}_{suffix}"
            self._hash_table_name = name
            region = self.space.allocate(
                name, min(entries * 8, 16 * 1024 * 1024)
            )
            self._hash_base = region.base

    # ------------------------------------------------------------------
    # th_fork
    # ------------------------------------------------------------------
    def th_fork(
        self,
        func: Callable[[Any, Any], Any],
        arg1: Any = None,
        arg2: Any = None,
        hint1: int = 0,
        hint2: int = 0,
        hint3: int = 0,
    ) -> None:
        """Create and schedule a thread to call ``func(arg1, arg2)``.

        ``hint1..hint3`` are the memory addresses used as scheduling
        hints; trailing zeros reduce the dimensionality (Section 3.1).
        """
        self._fork_impl(func, arg1, arg2, hint1, hint2, hint3)

    def _fork_impl(
        self,
        func: Callable[[Any, Any], Any],
        arg1: Any,
        arg2: Any,
        hint1: int,
        hint2: int,
        hint3: int,
    ) -> tuple["Bin", ThreadGroup, int]:
        """The body of ``th_fork``; returns where the record landed so
        scheduler extensions (dependencies, SMP) can track threads."""
        if self._running:
            raise RuntimeError("th_fork from inside a running thread is not supported")
        hints = HintVector(hint1, hint2, hint3)
        slot, block = self.scheduler.locate(hints)
        bin_ = self.table.find(slot, block)
        if bin_ is None:
            header_address = self._bin_header_address() if self.space else None
            bin_ = self.table.find_or_allocate(slot, block, header_address)
        group = bin_.current_group
        if group is None:
            group = self._new_group()
            bin_.groups.append(group)
        spec = ThreadSpec(func, arg1, arg2)
        index = group.append(spec)
        self._total_forks += 1
        if self.obs.enabled and not self._fork_batch_open:
            # One span from the first fork to the next th_run covers the
            # whole scheduling phase; individual forks are far too hot to
            # trace one by one.
            self.obs.bus.begin("sched.fork_batch", tid=self._obs_tid)
            self._fork_batch_open = True
        if self.oracle is not None:
            self.oracle.on_fork(bin_, group, index, spec)
        if self.recorder is not None:
            profiler = self.profiler
            if profiler is not None:
                # Fork-time package traffic (hash probe, thread record,
                # bin header) is locality cost *of the forked thread*:
                # charge it to the thread's own (site, bin) pair.
                profiler.enter_site(func)
                profiler.enter_bin(str(bin_.key))
                try:
                    self._trace_fork(slot, bin_.header_address, group, index)
                finally:
                    profiler.exit_bin()
                    profiler.exit_site()
            else:
                self._trace_fork(slot, bin_.header_address, group, index)
        return bin_, group, index

    # ------------------------------------------------------------------
    # th_run
    # ------------------------------------------------------------------
    def th_run(self, keep: int = 0) -> SchedulingStats:
        """Run all scheduled threads; return the run's distribution stats.

        Bins are traversed in the configured policy order (the paper's
        ready-list order by default), every thread in a bin running
        before the next bin.  Thread specifications are destroyed unless
        ``keep`` is non-zero, allowing re-execution.
        """
        obs = self.obs
        if obs.enabled:
            self._close_fork_batch()
            self._run_seq += 1
            obs.bus.begin(
                "sched.run",
                tid=self._obs_tid,
                run=self._run_seq,
                threads=self.pending_threads,
                keep=keep,
            )
        oracle = self.oracle
        try:
            if oracle is not None:
                from repro.core.policies import creation_order

                oracle.on_run_start(
                    self.table.all_threads(), ordered=self.policy is creation_order
                )
            bins = self.policy(self.table.ready)
            counts = self.execute_bins(bins)
            if oracle is not None:
                oracle.on_run_end(keep)
        finally:
            if obs.enabled:
                obs.bus.end(tid=self._obs_tid)
        if not keep:
            self.table.clear_threads()
        stats = SchedulingStats.from_counts(counts, seq=next_run_seq())
        self.run_history.append(stats)
        if obs.enabled:
            self._record_run_metrics(stats, counts)
        return stats

    def _close_fork_batch(self) -> None:
        """Close the open fork-batch span, stamping its fork count."""
        if self._fork_batch_open:
            self.obs.bus.end(tid=self._obs_tid, forks=self._total_forks)
            self._fork_batch_open = False

    def _record_run_metrics(self, stats: SchedulingStats, counts: list[int]) -> None:
        """Populate the scheduler metrics after one ``th_run``.

        Forks and dispatches are reported as deltas here rather than
        counted one by one in the (very hot) fork/dispatch paths.
        """
        metrics = self.obs.metrics
        metrics.counter("sched.runs").inc()
        metrics.counter("sched.forks").inc(self._total_forks - self._forks_reported)
        self._forks_reported = self._total_forks
        metrics.counter("sched.dispatches").inc(
            self._total_dispatches - self._dispatches_reported
        )
        self._dispatches_reported = self._total_dispatches
        occupancy = metrics.histogram("sched.bin_occupancy")
        for count in counts:
            occupancy.observe(count)
        metrics.counter("sched.bins_swept").inc(len(counts))
        metrics.gauge("sched.bins").set(self.bin_count)
        metrics.gauge("sched.max_chain_length").set(self.table.max_chain_length)

    def execute_bins(self, bins) -> list[int]:
        """Run every thread of ``bins`` in order; return per-bin counts.

        The building block of ``th_run``, exposed so schedulers that
        *partition* the ready list (e.g. the SMP extension, which hands
        whole bins to processors) can reuse the dispatch loop — including
        its trace accounting — without re-running the whole list.
        """
        recorder = self.recorder
        costs = self.costs
        counts: list[int] = []
        oracle = self.oracle
        obs = self.obs
        bus = obs.bus if obs.enabled else None
        profiler = self.profiler
        self._running = True
        try:
            for bin_ in bins:
                if oracle is not None:
                    oracle.on_bin_start(bin_)
                if bin_.thread_count == 0:
                    continue
                counts.append(bin_.thread_count)
                if bus is not None:
                    # One span per dispatched bin: the unit repro-trace's
                    # "top bins" report ranks.  Per-thread spans would
                    # dominate the run they are meant to observe.
                    bus.begin(
                        "sched.bin",
                        tid=self._obs_tid,
                        key=str(bin_.key),
                        threads=bin_.thread_count,
                    )
                if profiler is not None:
                    profiler.enter_bin(str(bin_.key))
                try:
                    if recorder is not None and bin_.header_address is not None:
                        recorder.record(
                            RefSegment(bin_.header_address, 8, 1, 8)
                        )
                    for group in bin_.groups:
                        if recorder is not None and group.base_address is not None:
                            recorder.record(
                                RefSegment(
                                    group.base_address, 8, max(1, costs.run_extra_refs), 8
                                )
                            )
                        for index, spec in enumerate(group):
                            self._dispatch(group, index, spec)
                finally:
                    if bus is not None:
                        bus.end(tid=self._obs_tid)
                    if profiler is not None:
                        profiler.exit_bin()
        finally:
            self._running = False
        return counts

    def _dispatch(self, group: ThreadGroup, index: int, spec: ThreadSpec) -> None:
        """Run one thread with its dispatch-cost trace accounting."""
        profiler = self.profiler
        if profiler is not None:
            # The thread-record read below is dispatch cost *of this
            # thread*, so the site scope opens before it.
            profiler.enter_site(spec.func)
        try:
            recorder = self.recorder
            if recorder is not None:
                costs = self.costs
                recorder.count_thread_instructions(costs.run_instructions)
                if group.base_address is not None:
                    # Dispatch reads the thread record itself.
                    recorder.record(
                        RefSegment(
                            group.slot_address(index, costs.slot_size),
                            8,
                            max(1, costs.slot_size // 8),
                            8,
                        )
                    )
            oracle = self.oracle
            if oracle is not None:
                oracle.on_dispatch_start(spec)
                try:
                    self._invoke(group, index, spec)
                finally:
                    oracle.on_dispatch_end(spec)
            else:
                self._invoke(group, index, spec)
            self._total_dispatches += 1
        finally:
            if profiler is not None:
                profiler.exit_site()

    def _invoke(self, group: ThreadGroup, index: int, spec: ThreadSpec):
        """Actually run one thread proc.

        The seam guarded execution overrides: the base package lets any
        exception propagate (the paper's package would crash too);
        :class:`repro.verify.guarded.GuardedThreadPackage` adds budgets
        and exception capture here.
        """
        return spec.run()

    def attach_oracle(self, oracle) -> None:
        """Attach a scheduler oracle; survives subsequent ``th_init``."""
        self.oracle = oracle
        self.table.on_allocate = oracle.on_bin_allocated

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending_threads(self) -> int:
        """Threads scheduled and not yet destroyed by a ``th_run``."""
        if getattr(self, "table", None) is None:
            return 0
        return sum(bin_.thread_count for bin_ in self.table.ready)

    @property
    def total_forks(self) -> int:
        return self._total_forks

    @property
    def total_dispatches(self) -> int:
        """Threads actually executed (counts re-runs under ``keep``)."""
        return self._total_dispatches

    @property
    def bin_count(self) -> int:
        return self.table.bin_count

    def distribution(self) -> SchedulingStats:
        """Stats for the currently scheduled threads, without running."""
        counts = [b.thread_count for b in self.table.ready if b.thread_count]
        return SchedulingStats.from_counts(counts)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _next_name(self, kind: str) -> str:
        self._alloc_seq += 1
        name = f"th_{kind}_{self._alloc_seq}"
        if self.space is not None:
            # A second package in the same simulated address space skips
            # over names its sibling already claimed (same discipline as
            # the hash-table allocation in ``th_init``).
            while name in self.space:
                self._alloc_seq += 1
                name = f"th_{kind}_{self._alloc_seq}"
        return name

    def _bin_header_address(self) -> int:
        region = self.space.allocate(self._next_name("bin"), 64)
        return region.base

    def _new_group(self) -> ThreadGroup:
        base = None
        if self.space is not None:
            base = self.space.allocate(
                self._next_name("group"), self.costs.group_bytes
            ).base
        return ThreadGroup(self.costs.group_capacity, base_address=base)

    def _trace_fork(
        self,
        slot: tuple[int, int, int],
        header_address: int | None,
        group: ThreadGroup,
        index: int,
    ) -> None:
        recorder = self.recorder
        costs = self.costs
        recorder.count_thread_instructions(costs.fork_instructions)
        # Hash-table probe: one read of the slot's chain-head pointer.
        hash_size = self.scheduler.hash_size
        flat = (slot[0] * hash_size + slot[1]) * hash_size + slot[2]
        table_size = self.space[self._hash_table_name].size
        entry_address = self._hash_base + (flat * 8) % table_size
        recorder.record(RefSegment(entry_address, 8, 1, 8))
        # Bin header: read the group link, write the updated count.
        if header_address is not None and costs.fork_extra_refs > 1:
            recorder.record(
                RefSegment(header_address, 8, costs.fork_extra_refs - 1, 8),
                writes=1,
            )
        # The thread record itself: func pointer, two args, padding.
        slot_address = group.slot_address(index, costs.slot_size)
        elements = max(1, costs.slot_size // 8)
        recorder.record(
            RefSegment(slot_address, 8, elements, 8), writes=elements
        )
