"""Scheduling hints: the addresses a thread declares it will touch.

``th_fork`` takes up to three hint addresses; unused trailing hints are 0
(the paper: "For the two-dimensional case, hint3 will be 0").  Hint value
0 therefore means *absent* — the simulated address space never allocates
address 0 (see :class:`~repro.mem.allocator.AddressSpace`).
"""

from __future__ import annotations

from dataclasses import dataclass

MAX_HINTS = 3


@dataclass(frozen=True)
class HintVector:
    """Up to three hint addresses, normalised.

    ``dims`` is the number of leading non-zero hints; the paper's package
    is "implemented ... for the three-dimensional case" with lower
    dimensionality expressed by zero-filling.
    """

    h1: int
    h2: int = 0
    h3: int = 0

    def __post_init__(self) -> None:
        for value in (self.h1, self.h2, self.h3):
            if value < 0:
                raise ValueError(f"hints must be non-negative addresses: {value}")
        if self.h1 == 0 and (self.h2 or self.h3):
            raise ValueError("hint1 must be set before hint2/hint3")
        if self.h2 == 0 and self.h3:
            raise ValueError("hint2 must be set before hint3")

    @property
    def dims(self) -> int:
        """Number of dimensions this thread's hints span (0 for no hints)."""
        if self.h3:
            return 3
        if self.h2:
            return 2
        if self.h1:
            return 1
        return 0

    def as_tuple(self) -> tuple[int, int, int]:
        return (self.h1, self.h2, self.h3)

    @classmethod
    def from_sequence(cls, hints) -> "HintVector":
        """Build a hint vector from any sequence of hint addresses.

        Raises a structured :class:`~repro.resilience.errors.HintError`
        when more than :data:`MAX_HINTS` hints are supplied — the paper's
        interface has exactly three hint slots, and truncating silently
        would change which bin the thread lands in.
        """
        hints = tuple(hints)
        if len(hints) > MAX_HINTS:
            from repro.resilience.errors import HintError

            raise HintError(
                f"{len(hints)} hints supplied but th_fork takes at most "
                f"{MAX_HINTS}; refusing to truncate {hints!r}",
                invariant="at most MAX_HINTS hints",
            )
        padded = hints + (0,) * (MAX_HINTS - len(hints))
        return cls(*padded)


def fold_symmetric(hints: HintVector) -> HintVector:
    """Canonicalise hint order so (hi, hj) and (hj, hi) share a bin.

    Section 2.3: "threads with address hints (hi, hj) and (hj, hi) can be
    placed in the same bin, since they reference the same pieces of data.
    An implementation can take advantage of this property to reduce the
    number of bins by 50%."  Sorting the non-zero hints descending keeps
    zeros (absent hints) trailing.
    """
    present = sorted((h for h in hints.as_tuple() if h), reverse=True)
    present += [0] * (MAX_HINTS - len(present))
    return HintVector(*present)
