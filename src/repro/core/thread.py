"""Thread specifications and thread groups.

A thread is just "a void function pointer and the two arguments ...
supplied by the user to th_fork" (Section 3.2) — run-to-completion, no
private stack, no handle.  Thread groups batch thread records inside a
bin so that record management is amortised; each group is a fixed-size
slot array plus a count and a link to the next group.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.util.validation import require_positive


@dataclass(frozen=True)
class ThreadSpec:
    """One run-to-completion thread: ``func(arg1, arg2)``."""

    func: Callable[[Any, Any], Any]
    arg1: Any = None
    arg2: Any = None

    def run(self) -> Any:
        """Execute the thread to completion on the caller's stack."""
        return self.func(self.arg1, self.arg2)


class ThreadGroup:
    """A fixed-capacity array of thread records within a bin.

    ``base_address`` is where the group's slot array lives in the
    simulated address space when the package is being traced; ``None``
    when running untraced.
    """

    def __init__(self, capacity: int, base_address: int | None = None) -> None:
        require_positive(capacity, "capacity")
        self.capacity = capacity
        self.base_address = base_address
        self._slots: list[ThreadSpec] = []

    @property
    def count(self) -> int:
        """Number of thread records currently in the group."""
        return len(self._slots)

    @property
    def full(self) -> bool:
        return len(self._slots) >= self.capacity

    def append(self, spec: ThreadSpec) -> int:
        """Store a thread record; return its slot index."""
        if self.full:
            raise OverflowError(f"thread group full (capacity {self.capacity})")
        self._slots.append(spec)
        return len(self._slots) - 1

    def slot_address(self, index: int, slot_size: int) -> int:
        """Simulated address of slot ``index`` (requires a traced group)."""
        if self.base_address is None:
            raise ValueError("group has no simulated address (untraced run)")
        if not 0 <= index < self.capacity:
            raise IndexError(f"slot {index} out of range (capacity {self.capacity})")
        return self.base_address + index * slot_size

    def spec_at(self, index: int) -> ThreadSpec:
        """The thread record stored in slot ``index``."""
        return self._slots[index]

    def __iter__(self):
        return iter(self._slots)

    def __len__(self) -> int:
        return len(self._slots)
