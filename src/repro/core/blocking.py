"""Blocking extension: locality scheduling with synchronising threads.

Section 7 of the paper: "it is not clear whether the scheduling
algorithm can be efficiently implemented with a general-purpose thread
package that supports synchronization and preemptive scheduling."  This
module answers the synchronization half.

Threads are Python generators — run-to-completion bodies that may
``yield`` a waitable (:class:`Event`, :class:`Semaphore`,
:class:`Channel` receive) and resume once it is ready, giving each
thread its own suspended "stack" without leaving user level (the same
trick as the paper's contemporaries' cooperative packages).  The
scheduler is the bin work-list of the dependency extension, generalised:
a bin activation advances every resident runnable thread until it parks
or finishes; signalling a waitable re-queues the woken threads' bins.
Locality is preserved because parked threads always resume *in their
bin*: a wake makes the bin runnable, it never migrates the thread.

Cooperative yield replaces preemption (out of scope — preemption points
would be inserted by a runtime, not expressible in the paper's
batch-scientific setting anyway); the costs the paper worried about show
up as the ``context_switches`` counter and the per-switch instruction
charge, which the ``extension_blocking`` experiment reports.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Iterable

from repro.core.package import ThreadPackage
from repro.core.stats import SchedulingStats, next_run_seq
from repro.mem.arrays import RefSegment

#: Instruction cost of parking + resuming a blocked thread (saving and
#: restoring the generator frame; a handful of times the plain dispatch
#: cost, far below a kernel context switch).
SWITCH_INSTRUCTIONS = 40


class Waitable:
    """Base for things a thread may ``yield`` on."""

    def __init__(self) -> None:
        self._waiters: list["_BlockingThread"] = []

    def _ready(self) -> bool:
        raise NotImplementedError

    def _park(self, thread: "_BlockingThread") -> None:
        self._waiters.append(thread)

    def _wake_all(self) -> list["_BlockingThread"]:
        woken, self._waiters = self._waiters, []
        return woken

    def _wake_one(self) -> list["_BlockingThread"]:
        if self._waiters:
            return [self._waiters.pop(0)]
        return []


class Event(Waitable):
    """A one-shot flag: waiters block until :meth:`set` is called."""

    def __init__(self) -> None:
        super().__init__()
        self._set = False
        self._package: "BlockingThreadPackage | None" = None

    @property
    def is_set(self) -> bool:
        return self._set

    def set(self) -> None:
        """Set the flag and wake every waiter."""
        self._set = True
        if self._package is not None:
            self._package._wake(self._wake_all())

    def _ready(self) -> bool:
        return self._set


class Semaphore(Waitable):
    """A counting semaphore: ``yield sem`` acquires, :meth:`release`
    returns a unit and wakes one waiter."""

    def __init__(self, value: int = 1) -> None:
        if value < 0:
            raise ValueError(f"initial value must be non-negative: {value}")
        super().__init__()
        self._value = value
        self._package: "BlockingThreadPackage | None" = None

    @property
    def value(self) -> int:
        return self._value

    def release(self) -> None:
        self._value += 1
        if self._package is not None:
            self._package._wake(self._wake_one())

    def _ready(self) -> bool:
        return self._value > 0

    def _acquire(self) -> None:
        self._value -= 1


class Channel(Waitable):
    """An unbounded FIFO: ``yield channel`` receives (the value is the
    result of the yield); :meth:`send` enqueues and wakes one waiter."""

    def __init__(self) -> None:
        super().__init__()
        self._items: deque[Any] = deque()
        self._package: "BlockingThreadPackage | None" = None

    def send(self, item: Any) -> None:
        self._items.append(item)
        if self._package is not None:
            self._package._wake(self._wake_one())

    def _ready(self) -> bool:
        return bool(self._items)

    def _take(self) -> Any:
        return self._items.popleft()

    def __len__(self) -> int:
        return len(self._items)


@dataclass
class _BlockingThread:
    generator: Generator
    group: Any
    index: int
    bin_id: int
    #: The forked body, kept so the locality profiler can attribute the
    #: thread's references to its fork site across park/resume cycles.
    func: Callable | None = None
    blocked_on: Waitable | None = None
    done: bool = False
    send_value: Any = None


ThreadBody = Callable[[Any, Any], Generator]


class BlockingThreadPackage(ThreadPackage):
    """A :class:`ThreadPackage` whose threads are generators that may
    ``yield`` waitables.

    ``th_fork`` takes a generator *function* of two arguments (plain
    functions still work: they simply never block).  ``th_run`` drives
    the bin work-list until every thread finishes; unset events with
    parked threads at the end raise :class:`DeadlockError`.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._threads: list[_BlockingThread] = []
        self._bin_members: dict[int, list[int]] = {}
        self._bin_order: list[Any] = []
        self._bin_index_of: dict[int, int] = {}
        self._queue: deque[int] = deque()
        self._queued: set[int] = set()
        #: Total park/resume pairs across all runs.
        self.context_switches = 0
        self.last_activations = 0

    # ------------------------------------------------------------------
    def event(self) -> Event:
        """A new event wired to this package's scheduler."""
        event = Event()
        event._package = self
        return event

    def semaphore(self, value: int = 1) -> Semaphore:
        semaphore = Semaphore(value)
        semaphore._package = self
        return semaphore

    def channel(self) -> Channel:
        channel = Channel()
        channel._package = self
        return channel

    # ------------------------------------------------------------------
    def th_fork(  # type: ignore[override]
        self,
        func: ThreadBody,
        arg1: Any = None,
        arg2: Any = None,
        hint1: int = 0,
        hint2: int = 0,
        hint3: int = 0,
    ) -> None:
        bin_, group, index = self._fork_impl(
            func, arg1, arg2, hint1, hint2, hint3
        )
        thread_id = len(self._threads)
        import inspect

        if inspect.isgeneratorfunction(func):
            # Instantiating a generator runs none of its body: the
            # thread starts at its first dispatch, like any other.
            body = func(arg1, arg2)
        else:
            # Defer plain callables to dispatch time too.
            body = _call_deferred(func, arg1, arg2)
        self._threads.append(
            _BlockingThread(
                generator=body,
                group=group,
                index=index,
                bin_id=id(bin_),
                func=func,
            )
        )
        members = self._bin_members.get(id(bin_))
        if members is None:
            members = self._bin_members[id(bin_)] = []
            self._bin_index_of[id(bin_)] = len(self._bin_order)
            self._bin_order.append(bin_)
        members.append(thread_id)

    # ------------------------------------------------------------------
    def th_run(self, keep: int = 0) -> SchedulingStats:
        if keep:
            raise ValueError("keep is not supported with blocking threads")
        threads = self._threads
        pending = sum(1 for t in threads if not t.done)
        counts = [0] * len(self._bin_order)
        self._queue = deque(range(len(self._bin_order)))
        self._queued = set(self._queue)
        activations = 0
        self._running = True
        try:
            while self._queue:
                bin_index = self._queue.popleft()
                self._queued.discard(bin_index)
                bin_ = self._bin_order[bin_index]
                advanced = self._drain_bin(bin_, bin_index, counts)
                if advanced:
                    activations += 1
            remaining = pending - sum(counts)
            if remaining:
                blocked = [
                    t for t in threads if not t.done and t.blocked_on is not None
                ]
                raise DeadlockError(
                    f"{len(blocked)} threads blocked forever "
                    f"(first waits on {type(blocked[0].blocked_on).__name__})"
                )
        finally:
            self._running = False
        self.last_activations = activations
        self.table.clear_threads()
        self._threads = []
        self._bin_members.clear()
        self._bin_order.clear()
        self._bin_index_of.clear()
        stats = SchedulingStats.from_counts(
            [c for c in counts if c], seq=next_run_seq()
        )
        self.run_history.append(stats)
        return stats

    # ------------------------------------------------------------------
    def _drain_bin(self, bin_, bin_index: int, counts: list[int]) -> bool:
        """Advance every runnable thread of one bin; True if any moved."""
        recorder = self.recorder
        members = self._bin_members[id(bin_)]
        profiler = self.profiler
        if profiler is not None:
            profiler.enter_bin(str(bin_.key))
        advanced = False
        try:
            progress = True
            while progress:
                progress = False
                for thread_id in members:
                    thread = self._threads[thread_id]
                    if thread.done:
                        continue
                    if thread.blocked_on is not None:
                        if not thread.blocked_on._ready():
                            continue
                        # The waitable became ready while we were parked.
                        self._resume_bookkeeping(thread)
                    if self._advance(thread):
                        counts[bin_index] += 1
                    advanced = True
                    progress = True
            if advanced and recorder is not None and bin_.header_address is not None:
                recorder.record(RefSegment(bin_.header_address, 8, 1, 8))
        finally:
            if profiler is not None:
                profiler.exit_bin()
        return advanced

    def _advance(self, thread: _BlockingThread) -> bool:
        """Step one thread until it parks or finishes; True if finished."""
        profiler = self.profiler
        if profiler is None:
            return self._advance_inner(thread)
        profiler.enter_site(thread.func)
        try:
            return self._advance_inner(thread)
        finally:
            profiler.exit_site()

    def _advance_inner(self, thread: _BlockingThread) -> bool:
        recorder = self.recorder
        if recorder is not None:
            costs = self.costs
            recorder.count_thread_instructions(costs.run_instructions)
            if thread.group.base_address is not None:
                recorder.record(
                    RefSegment(
                        thread.group.slot_address(
                            thread.index, costs.slot_size
                        ),
                        8,
                        max(1, costs.slot_size // 8),
                        8,
                    )
                )
        while True:
            try:
                yielded = thread.generator.send(thread.send_value)
            except StopIteration:
                thread.done = True
                thread.blocked_on = None
                self._total_dispatches += 1
                return True
            thread.send_value = None
            if not isinstance(yielded, Waitable):
                raise TypeError(
                    f"threads may only yield waitables, got {yielded!r}"
                )
            if yielded._ready():
                self._consume(thread, yielded)
                continue
            # Park.
            thread.blocked_on = yielded
            yielded._park(thread)
            self.context_switches += 1
            if recorder is not None:
                recorder.count_thread_instructions(SWITCH_INSTRUCTIONS)
            return False

    def _resume_bookkeeping(self, thread: _BlockingThread) -> None:
        waitable = thread.blocked_on
        thread.blocked_on = None
        if waitable is not None:
            if thread in waitable._waiters:
                waitable._waiters.remove(thread)
            self._consume(thread, waitable)
        if self.recorder is not None:
            self.recorder.count_thread_instructions(SWITCH_INSTRUCTIONS)

    def _consume(self, thread: _BlockingThread, waitable: Waitable) -> None:
        """Take the waitable's value (if any) for delivery to the thread."""
        if isinstance(waitable, Channel):
            thread.send_value = waitable._take()
        elif isinstance(waitable, Semaphore):
            waitable._acquire()

    def _wake(self, threads: Iterable[_BlockingThread]) -> None:
        """Requeue the bins of woken threads (threads never migrate:
        the wake only makes the bin runnable again; the thread resumes
        when its bin is next activated, data still warm)."""
        for thread in threads:
            bin_index = self._bin_index_of.get(thread.bin_id)
            if bin_index is not None and bin_index not in self._queued:
                self._queue.append(bin_index)
                self._queued.add(bin_index)


def _call_deferred(func, arg1, arg2) -> Generator:
    """A generator body for a plain (non-blocking) thread function:
    the call happens at first dispatch, preserving fork/run semantics."""
    result = func(arg1, arg2)
    if isinstance(result, Generator):
        # A generator factory hiding behind a wrapper (e.g. partial):
        # delegate so its yields still reach the scheduler.
        yield from result
    return


class DeadlockError(RuntimeError):
    """All remaining threads are parked on waitables nobody will signal."""
