"""The paper's contribution: a locality-scheduling fine-grained thread package.

Section 3 of the paper describes a minimal user-level thread system —
three calls (``th_init``, ``th_fork``, ``th_run``), run-to-completion
threads, no handles, no synchronization — whose scheduler places each
thread into a *bin* keyed by the block of the k-dimensional address plane
its hint addresses fall into, then runs bins in allocation order.  This
package is a faithful port of those 525 lines of C:

* :class:`ThreadPackage` — the three-call user interface.
* :class:`LocalityScheduler` — block geometry and hint-to-bin mapping.
* :class:`Bin`, :class:`BinTable`, :class:`ThreadGroup` — the four data
  structures of Figure 3 (thread group, bin, hash table, ready list).
* :mod:`repro.core.policies` — bin traversal orders (the paper uses
  bin-allocation order; alternatives are provided for ablation).
* :class:`SchedulingStats` — bins used, threads per bin, uniformity.
"""

from repro.core.bins import Bin, BinTable
from repro.core.hints import HintVector, fold_symmetric
from repro.core.package import ThreadPackage
from repro.core.policies import TRAVERSAL_POLICIES, creation_order, snake_order, sorted_order
from repro.core.scheduler import LocalityScheduler, default_block_size
from repro.core.stats import SchedulingStats
from repro.core.thread import ThreadGroup, ThreadSpec

__all__ = [
    "Bin",
    "BinTable",
    "HintVector",
    "fold_symmetric",
    "ThreadPackage",
    "TRAVERSAL_POLICIES",
    "creation_order",
    "snake_order",
    "sorted_order",
    "LocalityScheduler",
    "default_block_size",
    "SchedulingStats",
    "ThreadGroup",
    "ThreadSpec",
]
