"""Bin traversal policies.

The paper's scheduler traverses bins in allocation order ("Each time a
new bin is allocated, it is added to the end of this list.  When th_run
is called, the ready list is traversed, in order").  For the fork
patterns of the paper's applications that order is already close to a
shortest tour of the occupied blocks.  Two alternatives are provided so
the claim can be ablated:

* ``sorted_order`` — lexicographic by block coordinates;
* ``snake_order`` — serpentine over the first two coordinates, which
  minimises the coordinate distance between consecutive 2-D bins.
"""

from __future__ import annotations

from typing import Callable

from repro.core.bins import Bin

TraversalPolicy = Callable[[list[Bin]], list[Bin]]


def creation_order(bins: list[Bin]) -> list[Bin]:
    """The paper's policy: bins in first-allocation order."""
    return list(bins)


def sorted_order(bins: list[Bin]) -> list[Bin]:
    """Bins sorted lexicographically by block coordinates."""
    return sorted(bins, key=lambda bin_: bin_.key)


def snake_order(bins: list[Bin]) -> list[Bin]:
    """Serpentine order: ascending first coordinate, alternating direction
    of the second (and third) so consecutive bins stay adjacent."""

    def key(bin_: Bin) -> tuple[int, int, int]:
        c1, c2, c3 = bin_.key
        if c1 % 2:
            c2 = -c2
        if c2 % 2:
            c3 = -c3
        return (c1, c2, c3)

    return sorted(bins, key=key)


def greedy_tour(bins: list[Bin]) -> list[Bin]:
    """Nearest-neighbour tour over block coordinates.

    Section 2.2 frames scheduling as "finding a tour of the thread
    points ... Scheduling involves traversing the bins along some path,
    preferably the shortest one" — and then settles for allocation
    order.  This policy actually chases the short tour: starting from
    the first-allocated bin, repeatedly hop to the unvisited bin at the
    smallest Manhattan distance in block space (ties broken by
    allocation order).  Consecutive bins then share block coordinates
    whenever possible, maximising cross-bin block reuse.  O(B^2) in the
    bin count — affordable because bins number in the tens.
    """
    if not bins:
        return []
    remaining = list(range(1, len(bins)))
    tour = [bins[0]]
    current = bins[0].key
    while remaining:
        best_position = 0
        best_distance = None
        for position, index in enumerate(remaining):
            key = bins[index].key
            distance = (
                abs(key[0] - current[0])
                + abs(key[1] - current[1])
                + abs(key[2] - current[2])
            )
            if best_distance is None or distance < best_distance:
                best_distance = distance
                best_position = position
        index = remaining.pop(best_position)
        tour.append(bins[index])
        current = bins[index].key
    return tour


TRAVERSAL_POLICIES: dict[str, TraversalPolicy] = {
    "creation": creation_order,
    "sorted": sorted_order,
    "snake": snake_order,
    "greedy": greedy_tour,
}


def resolve_policy(policy: str | TraversalPolicy) -> TraversalPolicy:
    """Look up a policy by name, or pass a callable through."""
    if callable(policy):
        return policy
    try:
        return TRAVERSAL_POLICIES[policy]
    except KeyError:
        raise ValueError(
            f"unknown traversal policy {policy!r}; "
            f"choose from {sorted(TRAVERSAL_POLICIES)}"
        ) from None
