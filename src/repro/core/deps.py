"""Dependency extension: locality scheduling with thread ordering constraints.

Section 6 of the paper: the package "supports only independent,
'run-to-completion' threads ... Methods to specify dependencies and ways
to implement them efficiently remain to be demonstrated."  This module
demonstrates one: ``DependentThreadPackage`` extends ``th_fork`` with an
``after`` list and runs a *bin-draining list schedule* —

1. bins are visited in the usual ready-list (locality) order;
2. a visited bin runs every thread whose dependences are satisfied, and
   keeps draining itself as its own threads enable one another;
3. threads still blocked stay for a later sweep; sweeps repeat until
   everything has run (a sweep that runs nothing means a cycle).

When a program's dependences flow "forward" along the hint space — true
of stencil codes like SOR, where column j's update needs its neighbours
from earlier sweeps — a single sweep suffices and each bin's data is
loaded once for *all* time steps: dependence-aware locality scheduling
recovers time-skewed tiling's cache behaviour with exact numerics and
none of the skew bookkeeping (see ``repro.apps.sor.programs
.threaded_exact`` and the ``extension_deps`` experiment).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.package import ThreadPackage
from repro.core.stats import SchedulingStats, next_run_seq
from repro.core.thread import ThreadGroup, ThreadSpec
from repro.mem.arrays import RefSegment
from repro.resilience.errors import ConfigError


class DependencyCycleError(RuntimeError):
    """Raised when a full sweep over all bins cannot run any thread.

    The message names the blocked thread ids and, for each, the unmet
    predecessors they are waiting on — enough to see the cycle without
    re-running under a debugger.
    """


@dataclass
class _Record:
    """Book-keeping for one dependent thread."""

    spec: ThreadSpec
    group: ThreadGroup
    index: int
    remaining: int
    bin_id: int = 0
    dependents: list[int] = field(default_factory=list)
    preds: list[int] = field(default_factory=list)
    done: bool = False


class DependentThreadPackage(ThreadPackage):
    """A :class:`ThreadPackage` whose threads may declare predecessors.

    ``th_fork`` gains an ``after`` argument (thread ids returned by
    earlier forks) and returns this thread's id — the one departure from
    the paper's value-free interface, required to *name* a predecessor.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._records: list[_Record] = []
        self._bin_members: dict[int, list[int]] = {}
        self._bin_order: list[Any] = []
        #: Bin activations the last th_run needed (== bin count when the
        #: dependences follow the locality tour perfectly).
        self.last_activations = 0
        self.last_sweeps = 0  # alias kept in step with last_activations

    # ------------------------------------------------------------------
    def th_fork(  # type: ignore[override]
        self,
        func: Callable[[Any, Any], Any],
        arg1: Any = None,
        arg2: Any = None,
        hint1: int = 0,
        hint2: int = 0,
        hint3: int = 0,
        after: tuple[int, ...] | list[int] = (),
    ) -> int:
        """Schedule ``func(arg1, arg2)`` to run after the ``after`` threads.

        Returns the new thread's id.
        """
        # Validate the edge list *before* the fork takes effect, so a bad
        # ``after`` never leaves a half-registered thread in the bins.
        thread_id = len(self._records)
        for predecessor in after:
            if not isinstance(predecessor, int) or isinstance(predecessor, bool):
                raise ConfigError(
                    f"thread {thread_id} cannot depend on {predecessor!r}: "
                    f"'after' takes thread ids returned by earlier th_fork "
                    f"calls",
                    field="after",
                )
            if predecessor == thread_id:
                raise ConfigError(
                    f"thread {thread_id} cannot depend on itself "
                    f"(after={predecessor})",
                    field="after",
                )
            if not 0 <= predecessor < thread_id:
                raise ConfigError(
                    f"thread {thread_id} cannot depend on {predecessor}: "
                    f"unknown thread id (ids 0..{thread_id - 1} exist so "
                    f"far; 'after' edges must point backwards)",
                    field="after",
                )
        bin_, group, index = self._fork_impl(
            func, arg1, arg2, hint1, hint2, hint3
        )
        record = _Record(
            spec=group.spec_at(index),
            group=group,
            index=index,
            remaining=0,
            bin_id=id(bin_),
        )
        self._records.append(record)
        members = self._bin_members.get(id(bin_))
        if members is None:
            members = self._bin_members[id(bin_)] = []
            self._bin_order.append(bin_)
        members.append(thread_id)
        for predecessor in after:
            pred = self._records[predecessor]
            if not pred.done:
                pred.dependents.append(thread_id)
                record.preds.append(predecessor)
                record.remaining += 1
        if self.oracle is not None:
            self.oracle.on_dep_fork(thread_id, record.spec, tuple(after))
        return thread_id

    # ------------------------------------------------------------------
    def th_run(self, keep: int = 0) -> SchedulingStats:
        """Run all threads, respecting dependences, maximising locality.

        A work-list of *bins*: each activation drains everything the bin
        can currently run (its own completions cascade immediately);
        completions that enable threads in another bin re-queue that
        bin.  Bins therefore run long, cache-resident bursts, and the
        number of activations (``last_activations``) measures how well
        the dependence structure agrees with the locality tour — one
        activation per bin is the time-skewed-tiling ideal.

        ``keep`` must be 0: re-executing a dependence graph would need
        the completion state reset, which the paper's interface has no
        way to express.
        """
        if keep:
            raise ValueError("keep is not supported with dependent threads")
        from collections import deque

        recorder = self.recorder
        records = self._records
        pending = sum(1 for r in records if not r.done)
        oracle = self.oracle
        if oracle is not None:
            # Dependency scheduling legitimately revisits bins, so the
            # allocation-order check is off; exactly-once, dependency
            # order, and run-to-completion are still enforced.
            oracle.on_run_start(
                [r.spec for r in records if not r.done], ordered=False
            )
        counts = [0] * len(self._bin_order)
        bin_index_of = {id(bin_): i for i, bin_ in enumerate(self._bin_order)}
        queue = deque(range(len(self._bin_order)))
        queued = set(queue)
        activations = 0
        self._running = True
        try:
            while queue:
                bin_index = queue.popleft()
                queued.discard(bin_index)
                bin_ = self._bin_order[bin_index]
                members = self._bin_members[id(bin_)]
                touched = False
                drained = False
                while not drained:
                    drained = True
                    for thread_id in members:
                        record = records[thread_id]
                        if record.done or record.remaining:
                            continue
                        if not touched:
                            touched = True
                            activations += 1
                            if (
                                recorder is not None
                                and bin_.header_address is not None
                            ):
                                recorder.record(
                                    RefSegment(bin_.header_address, 8, 1, 8)
                                )
                        self._dispatch(record.group, record.index, record.spec)
                        record.done = True
                        counts[bin_index] += 1
                        pending -= 1
                        for dependent in record.dependents:
                            dep = records[dependent]
                            dep.remaining -= 1
                            if dep.remaining == 0:
                                if dep.bin_id == id(bin_):
                                    # Cascade within this activation.
                                    drained = False
                                else:
                                    other = bin_index_of[dep.bin_id]
                                    if other not in queued:
                                        queue.append(other)
                                        queued.add(other)
            if pending:
                raise DependencyCycleError(self._describe_blocked(pending))
        finally:
            self._running = False
        if oracle is not None:
            oracle.on_run_end()
        self.last_activations = activations
        self.last_sweeps = activations  # backwards-compatible alias
        self.table.clear_threads()
        self._records.clear()
        self._bin_members.clear()
        self._bin_order.clear()
        stats = SchedulingStats.from_counts(
            [c for c in counts if c], seq=next_run_seq()
        )
        self.run_history.append(stats)
        return stats

    # ------------------------------------------------------------------
    def _describe_blocked(self, pending: int, limit: int = 8) -> str:
        """Name the blocked threads and what each is still waiting on."""
        details = []
        for thread_id, record in enumerate(self._records):
            if record.done:
                continue
            unmet = [p for p in record.preds if not self._records[p].done]
            if unmet:
                waits = "waiting on " + ", ".join(str(p) for p in unmet)
            elif record.remaining:
                # Edges injected behind th_fork's back (tests, tooling)
                # leave no preds record; the count is still truthful.
                waits = f"waiting on {record.remaining} unrecorded edge(s)"
            else:
                waits = "ready but never dispatched"
            details.append(f"thread {thread_id} {waits}")
            if len(details) == limit:
                break
        suffix = "" if pending <= limit else f"; ... {pending - limit} more"
        return (
            f"{pending} threads blocked in a dependence cycle: "
            + "; ".join(details)
            + suffix
        )
