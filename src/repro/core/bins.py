"""Bins and the bin hash table (Figure 3's data structures).

A *bin* collects the thread groups of one scheduling block.  The bin
structure in the paper carries three links — the hash chain, the chain of
thread groups, and the ready-list link — plus a search key; here the hash
chain is a per-slot list, the group chain is ``Bin.groups``, and the
ready list is the table's ``ready`` list, appended to when a bin is first
allocated ("The scheduler does not allocate a bin in the hash table until
it schedules the first thread in it").
"""

from __future__ import annotations

from repro.core.scheduler import BlockKey, LocalityScheduler, SlotKey
from repro.core.thread import ThreadGroup, ThreadSpec
from repro.util.validation import require_positive


class Bin:
    """All thread groups of one scheduling block."""

    def __init__(self, key: BlockKey, header_address: int | None = None) -> None:
        self.key = key
        self.header_address = header_address
        self.groups: list[ThreadGroup] = []

    @property
    def thread_count(self) -> int:
        return sum(group.count for group in self.groups)

    @property
    def current_group(self) -> ThreadGroup | None:
        """The group accepting new threads, or ``None`` if a new group is
        needed (no groups yet, or the last one is full)."""
        if self.groups and not self.groups[-1].full:
            return self.groups[-1]
        return None

    def threads(self):
        """All thread specs in insertion order."""
        for group in self.groups:
            yield from group

    def clear(self) -> None:
        """Drop all thread groups (after a destructive ``th_run``)."""
        self.groups.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Bin(key={self.key}, threads={self.thread_count})"


class BinTable:
    """Hash table of bins plus the ready list.

    Collisions (different blocks hashing to one slot) are resolved by
    chaining; the full block key disambiguates.  The ready list records
    bins in first-allocation order — the order ``th_run`` traverses.
    """

    def __init__(self, scheduler: LocalityScheduler, group_capacity: int) -> None:
        require_positive(group_capacity, "group_capacity")
        self.scheduler = scheduler
        self.group_capacity = group_capacity
        self._slots: dict[SlotKey, list[Bin]] = {}
        self.ready: list[Bin] = []
        self._chain_probes = 0
        #: Optional observer called with each newly allocated bin, in
        #: allocation order.  The verification oracle uses it to learn
        #: the ready-list order independently of ``ready`` itself.
        self.on_allocate = None

    def find(self, slot: SlotKey, block: BlockKey) -> Bin | None:
        """The bin for ``block``, or ``None`` if not yet allocated."""
        chain = self._slots.get(slot)
        if chain is None:
            return None
        for bin_ in chain:
            self._chain_probes += 1
            if bin_.key == block:
                return bin_
        return None

    def find_or_allocate(
        self, slot: SlotKey, block: BlockKey, header_address: int | None = None
    ) -> Bin:
        """The bin for ``block``, allocating (and readying) it if absent."""
        bin_ = self.find(slot, block)
        if bin_ is None:
            bin_ = Bin(block, header_address=header_address)
            self._slots.setdefault(slot, []).append(bin_)
            self.ready.append(bin_)
            if self.on_allocate is not None:
                self.on_allocate(bin_)
        return bin_

    @property
    def bin_count(self) -> int:
        return len(self.ready)

    @property
    def chain_probes(self) -> int:
        """Total hash-chain comparisons performed (collision metric)."""
        return self._chain_probes

    @property
    def max_chain_length(self) -> int:
        """Longest collision chain in the table."""
        if not self._slots:
            return 0
        return max(len(chain) for chain in self._slots.values())

    def clear_threads(self) -> None:
        """Drop all thread groups but keep the bins and ready order."""
        for bin_ in self.ready:
            bin_.clear()

    def reset(self) -> None:
        """Drop everything: bins, chains, ready list."""
        self._slots.clear()
        self.ready.clear()
        self._chain_probes = 0

    def all_threads(self) -> list[ThreadSpec]:
        """Every scheduled thread in ready-list (bin-allocation) order."""
        specs: list[ThreadSpec] = []
        for bin_ in self.ready:
            specs.extend(bin_.threads())
        return specs
