"""Scheduling statistics: how threads were distributed over bins.

The paper reports, for each threaded run, the thread count, bin count and
average threads per bin (e.g. matmul: "1,048,576 threads distributed in
81 bins for an average of 12,945 threads per bin.  The distribution of
the threads in the bins was quite uniform"), and for N-body notes the
distribution "was much less uniform".  ``SchedulingStats`` captures
exactly those quantities plus a coefficient of variation to make the
uniformity claim checkable.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field

#: Process-wide ``th_run`` sequence: every completed run (any package
#: flavor — base, blocking, dependent, SMP) draws the next stamp, so
#: "the last run" is well-defined even when a program interleaves runs
#: across several packages.
_RUN_SEQ = itertools.count(1)


def next_run_seq() -> int:
    """The next process-wide ``th_run`` sequence stamp (monotonic)."""
    return next(_RUN_SEQ)


@dataclass(frozen=True)
class SchedulingStats:
    """Distribution of one ``th_run``'s threads over its bins."""

    threads: int
    bins: int
    threads_per_bin: tuple[int, ...] = field(default=())
    #: Process-wide dispatch sequence number of the ``th_run`` that
    #: produced these stats (0 for stats built outside a run, e.g.
    #: :meth:`ThreadPackage.distribution`).  Lets the simulator pick the
    #: chronologically last run across several packages.
    seq: int = 0

    @classmethod
    def from_counts(cls, counts: list[int], seq: int = 0) -> "SchedulingStats":
        return cls(
            threads=sum(counts),
            bins=len(counts),
            threads_per_bin=tuple(counts),
            seq=seq,
        )

    @property
    def mean_threads_per_bin(self) -> float:
        if self.bins == 0:
            return 0.0
        return self.threads / self.bins

    @property
    def max_threads_per_bin(self) -> int:
        return max(self.threads_per_bin, default=0)

    @property
    def min_threads_per_bin(self) -> int:
        return min(self.threads_per_bin, default=0)

    @property
    def coefficient_of_variation(self) -> float:
        """Std-dev of per-bin counts over their mean; 0 = perfectly uniform.

        The paper calls matmul's distribution "quite uniform" and
        N-body's "much less uniform" — this is the number that lets a
        test assert that ordering.
        """
        mean = self.mean_threads_per_bin
        if mean == 0 or self.bins < 2:
            return 0.0
        variance = sum((c - mean) ** 2 for c in self.threads_per_bin) / self.bins
        return math.sqrt(variance) / mean

    def describe(self) -> str:
        """One-line summary in the paper's phrasing."""
        return (
            f"{self.threads:,} threads in {self.bins} bins "
            f"(avg {self.mean_threads_per_bin:,.0f}/bin, cv {self.coefficient_of_variation:.2f})"
        )
