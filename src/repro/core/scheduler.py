"""The locality scheduling algorithm: hints -> block -> bin (Section 2.3).

The k hint addresses of a thread are coordinates of a point in a
k-dimensional plane.  The plane is divided into blocks of
``block_size`` bytes per dimension; all threads whose points fall in the
same block share a *bin* and therefore run adjacently.  Choosing the
block dimensions so that they sum to at most the cache size C guarantees
the data of one bin's threads fits in cache: the paper's default is
dimension sizes summing to exactly C (C/k per dimension for k used
dimensions; C/2 in every 2-D experiment).

Bins live in a hash table ("simply a three-dimensional array of pointers
to bins"); the default hash function "performs a shift and a mask
operation on each hint", with collisions resolved by chaining on the
full block coordinates.
"""

from __future__ import annotations

import warnings

from repro.core.hints import HintVector, MAX_HINTS, fold_symmetric
from repro.resilience.errors import ConfigError, ConfigWarning
from repro.util.validation import require_positive, require_power_of_two

#: Default hash-table entries per dimension.
DEFAULT_HASH_SIZE = 64

BlockKey = tuple[int, int, int]
SlotKey = tuple[int, int, int]


def default_block_size(l2_size: int, dims: int = 2) -> int:
    """The configuration-dependent default block dimension size.

    The sum of the block's dimension sizes defaults to the second-level
    cache size, i.e. ``l2_size / dims`` per dimension.
    """
    require_positive(l2_size, "l2_size")
    if not 1 <= dims <= MAX_HINTS:
        raise ValueError(f"dims must be 1..{MAX_HINTS}, got {dims}")
    return max(1, l2_size // dims)


class LocalityScheduler:
    """Maps hint vectors to block coordinates and hash slots.

    Parameters
    ----------
    block_size:
        Block dimension size in bytes (one value for all dimensions, as
        in ``th_init``).  Powers of two use the paper's shift.  Other
        sizes fall back to division (same block geometry but not the
        paper's hash function); that fallback is announced with a
        :class:`~repro.resilience.errors.ConfigWarning`, and rejected
        with a :class:`~repro.resilience.errors.ConfigError` when
        ``strict`` is set.
    hash_size:
        Hash-table entries per dimension; must be a power of two so the
        paper's mask applies.
    fold:
        Canonicalise symmetric hint orderings into one bin (Section 2.3's
        50% bin reduction).
    strict:
        Reject configurations the paper's shift-and-mask hash cannot
        express instead of warning and falling back.
    """

    def __init__(
        self,
        block_size: int,
        hash_size: int = DEFAULT_HASH_SIZE,
        fold: bool = False,
        strict: bool = False,
    ) -> None:
        require_positive(block_size, "block_size")
        require_power_of_two(hash_size, "hash_size")
        self.block_size = block_size
        self.hash_size = hash_size
        self.fold = fold
        if block_size & (block_size - 1) == 0:
            self._shift = block_size.bit_length() - 1
        else:
            if strict:
                raise ConfigError(
                    f"block_size {block_size} is not a power of two, so "
                    "the paper's shift-based hash does not apply; pass a "
                    "power of two or drop strict to accept the division "
                    "fallback",
                    field="block_size",
                )
            warnings.warn(
                f"block_size {block_size} is not a power of two; the "
                "scheduler falls back to division instead of the paper's "
                "shift (same block geometry, different hash cost)",
                ConfigWarning,
                stacklevel=2,
            )
            self._shift = None
        self._mask = hash_size - 1

    def block_of(self, hints: HintVector) -> BlockKey:
        """Full block coordinates of a thread (the bin search key)."""
        if self.fold:
            hints = fold_symmetric(hints)
        if self._shift is not None:
            shift = self._shift
            return (
                hints.h1 >> shift,
                hints.h2 >> shift,
                hints.h3 >> shift,
            )
        size = self.block_size
        return (hints.h1 // size, hints.h2 // size, hints.h3 // size)

    def slot_of(self, block: BlockKey) -> SlotKey:
        """Hash-table slot of a block (mask per dimension)."""
        mask = self._mask
        return (block[0] & mask, block[1] & mask, block[2] & mask)

    def locate(self, hints: HintVector) -> tuple[SlotKey, BlockKey]:
        """Both the hash slot and the full block key for a hint vector."""
        block = self.block_of(hints)
        return self.slot_of(block), block

    def blocks_collide(self, a: HintVector, b: HintVector) -> bool:
        """Whether two hint vectors land in the same hash slot while being
        in different blocks — a chaining collision (for tests/ablation)."""
        block_a, block_b = self.block_of(a), self.block_of(b)
        return block_a != block_b and self.slot_of(block_a) == self.slot_of(block_b)
