"""repro — a reproduction of "Thread Scheduling for Cache Locality"
(Philbin, Edler, Anshus, Douglas, Li; ASPLOS 1996).

The public API re-exports the pieces a downstream user needs:

* the locality thread package (:class:`ThreadPackage`) — the paper's
  contribution, usable standalone as a pure-Python scheduler;
* machine models (:func:`r8000`, :func:`r10000`) and the trace-driven
  cache simulator (:class:`CacheHierarchy`);
* the simulation engine (:class:`Simulator`) and the four applications
  (:mod:`repro.apps`);
* the experiment harness (:func:`run_experiment`) regenerating every
  table and figure of the paper's evaluation.

Quickstart::

    from repro import ThreadPackage

    package = ThreadPackage(l2_size=2 * 1024 * 1024)
    package.th_fork(print, "hello", "world", hint1=0x10000)
    package.th_run(0)
"""

from repro.cache import CacheConfig, CacheHierarchy
from repro.core import LocalityScheduler, SchedulingStats, ThreadPackage
from repro.exp import run_experiment
from repro.machine import MachineSpec, TimingModel, r8000, r10000
from repro.mem import AddressSpace, ArrayHandle, Layout
from repro.resilience import (
    CheckpointError,
    ConfigError,
    ExperimentError,
    ReproError,
    SimulationError,
)
from repro.sim import SimContext, Simulator, SimResult
from repro.trace import TraceRecorder

__version__ = "1.0.0"

__all__ = [
    "CacheConfig",
    "CacheHierarchy",
    "LocalityScheduler",
    "SchedulingStats",
    "ThreadPackage",
    "run_experiment",
    "MachineSpec",
    "TimingModel",
    "r8000",
    "r10000",
    "AddressSpace",
    "ArrayHandle",
    "Layout",
    "SimContext",
    "Simulator",
    "SimResult",
    "TraceRecorder",
    "ReproError",
    "ConfigError",
    "SimulationError",
    "ExperimentError",
    "CheckpointError",
    "__version__",
]
