"""The execution context handed to traced programs."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cache.hierarchy import CacheHierarchy
from repro.core.package import ThreadPackage
from repro.core.policies import TraversalPolicy
from repro.machine.spec import MachineSpec
from repro.mem.allocator import AddressSpace
from repro.mem.arrays import ArrayHandle
from repro.mem.layout import Layout
from repro.obs.telemetry import DISABLED, Telemetry
from repro.trace.costmodel import DEFAULT_THREAD_COSTS, ThreadCostModel
from repro.trace.recorder import TraceRecorder


@dataclass
class SimContext:
    """Everything a traced program needs to run under simulation.

    Programs allocate their arrays through :meth:`allocate_array`, record
    references through :attr:`recorder`, and (for threaded versions)
    obtain an instrumented thread package through
    :meth:`make_thread_package`.
    """

    machine: MachineSpec
    hierarchy: CacheHierarchy
    recorder: TraceRecorder
    space: AddressSpace
    packages: list[ThreadPackage] = field(default_factory=list)
    verify: bool = False
    #: Observability handle (``repro.obs``): the event bus and metrics
    #: registry every package and oracle created through this context
    #: reports into.  The shared disabled singleton by default, so the
    #: un-instrumented path costs one attribute test.
    obs: Telemetry = DISABLED
    #: Optional :class:`repro.obs.profile.LocalityProfiler`, propagated
    #: to every thread package created through this context so dispatch
    #: and bin sweeps report their (fork site, bin) scopes.  ``None``
    #: (profiling off) keeps the hooks at one attribute test.
    profiler: object | None = None

    def allocate_array(
        self,
        name: str,
        shape: tuple[int, ...],
        element_size: int = 8,
        layout: Layout = Layout.COLUMN_MAJOR,
    ) -> ArrayHandle:
        """Allocate a named array in the simulated address space."""
        size = element_size
        for dim in shape:
            size *= dim
        region = self.space.allocate(name, size)
        if self.obs.enabled:
            self.obs.bus.instant(
                "mem.alloc", array=name, bytes=size, base=region.base
            )
        return ArrayHandle(
            name, region.base, shape, element_size=element_size, layout=layout
        )

    def make_thread_package(
        self,
        block_size: int = 0,
        hash_size: int = 0,
        fold_symmetric: bool = False,
        policy: str | TraversalPolicy = "creation",
        costs: ThreadCostModel = DEFAULT_THREAD_COSTS,
    ) -> ThreadPackage:
        """An instrumented thread package wired to this context's recorder.

        The package's own memory behaviour (thread records, bin headers,
        hash probes) is simulated alongside the application's.
        """
        return self._register(
            ThreadPackage,
            block_size=block_size,
            hash_size=hash_size,
            fold_symmetric=fold_symmetric,
            policy=policy,
            costs=costs,
        )

    def make_dependent_thread_package(
        self,
        block_size: int = 0,
        hash_size: int = 0,
        fold_symmetric: bool = False,
        policy: str | TraversalPolicy = "creation",
        costs: ThreadCostModel = DEFAULT_THREAD_COSTS,
    ):
        """An instrumented :class:`~repro.core.deps.DependentThreadPackage`
        (the Section 6 dependency extension)."""
        from repro.core.deps import DependentThreadPackage

        return self._register(
            DependentThreadPackage,
            block_size=block_size,
            hash_size=hash_size,
            fold_symmetric=fold_symmetric,
            policy=policy,
            costs=costs,
        )

    def make_guarded_thread_package(
        self,
        block_size: int = 0,
        hash_size: int = 0,
        fold_symmetric: bool = False,
        policy: str | TraversalPolicy = "creation",
        costs: ThreadCostModel = DEFAULT_THREAD_COSTS,
        thread_budget: int = 0,
        max_address: int | None = None,
        strict_hints: bool = False,
    ) -> ThreadPackage:
        """An instrumented :class:`~repro.verify.guarded.GuardedThreadPackage`
        (validated hints, contained thread procs, optional step budget)."""
        from repro.verify.guarded import GuardedThreadPackage

        return self._register(
            GuardedThreadPackage,
            block_size=block_size,
            hash_size=hash_size,
            fold_symmetric=fold_symmetric,
            policy=policy,
            costs=costs,
            thread_budget=thread_budget,
            max_address=max_address,
            strict_hints=strict_hints,
        )

    def _register(self, factory, **kwargs) -> ThreadPackage:
        package = factory(
            l2_size=self.machine.l2.size,
            recorder=self.recorder,
            address_space=self.space,
            obs=self.obs,
            **kwargs,
        )
        if self.verify:
            from repro.verify.scheduler_oracle import SchedulerOracle

            oracle = SchedulerOracle(machine=self.machine.name)
            oracle.obs = self.obs
            package.attach_oracle(oracle)
        if self.profiler is not None:
            package.profiler = self.profiler
        self.packages.append(package)
        return package

    @property
    def total_forks(self) -> int:
        return sum(p.total_forks for p in self.packages)

    @property
    def total_dispatches(self) -> int:
        return sum(p.total_dispatches for p in self.packages)
