"""Simulation engine: run a traced program on a machine model.

A *traced program* is a callable taking a :class:`SimContext` — which
bundles the machine, a fresh cache hierarchy, a trace recorder, and an
address space — performing its real computation while describing its
memory behaviour to the recorder.  :class:`Simulator` runs one and
returns a :class:`SimResult`: reference/miss counts shaped like the
paper's cache tables and a modeled time from the paper's crude analysis.
"""

from repro.sim.context import SimContext
from repro.sim.engine import Simulator
from repro.sim.result import SimResult

__all__ = ["SimContext", "Simulator", "SimResult"]
