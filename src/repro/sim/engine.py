"""The simulator: fresh state per run, crude-analysis timing at the end."""

from __future__ import annotations

from typing import Any, Callable

from repro.machine.spec import MachineSpec
from repro.machine.timing import TimingInputs, TimingModel
from repro.mem.allocator import AddressSpace
from repro.resilience.errors import ReproError, SimulationError
from repro.resilience.faults import fault_point
from repro.sim.context import SimContext
from repro.sim.result import SimResult
from repro.trace.recorder import TraceRecorder

TracedProgram = Callable[[SimContext], Any]


class Simulator:
    """Runs traced programs on one machine model.

    Each :meth:`run` gets a fresh cache hierarchy, recorder, and address
    space, so results are independent and deterministic.
    """

    def __init__(self, machine: MachineSpec) -> None:
        self.machine = machine
        self.timing = TimingModel(machine)

    def run(
        self,
        program: TracedProgram,
        name: str | None = None,
        code_footprint: int = 4096,
        l2_page_mapper=None,
    ) -> SimResult:
        """Simulate ``program`` and return its result.

        ``code_footprint`` is the bytes of kernel code charged as one-time
        compulsory instruction-side misses (Section 4's simulations
        "exclude program initialization costs" but include the resident
        loop code; 4 KB covers every kernel in the paper).
        ``l2_page_mapper`` optionally models a physically-indexed L2
        behind a virtual-to-physical page table (repro.mem.paging).
        """
        program_name = name or getattr(program, "__name__", "program")
        fault_point("sim.run", machine=self.machine.name, program=program_name)
        hierarchy = self.machine.build_hierarchy(l2_page_mapper)
        recorder = TraceRecorder(hierarchy)
        # Stagger allocations by a few L2 lines so equal-sized arrays do
        # not alias the same sets exactly (a scaled-cache artifact; real
        # allocators and page placement provide the same spreading).
        space = AddressSpace(stagger=3 * self.machine.l2.line_size)
        context = SimContext(
            machine=self.machine,
            hierarchy=hierarchy,
            recorder=recorder,
            space=space,
        )
        if code_footprint:
            hierarchy.charge_code_footprint(code_footprint)
        try:
            payload = program(context)
        except ReproError:
            raise  # already structured (e.g. an armed fault at an inner site)
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception as exc:
            raise SimulationError(
                f"{type(exc).__name__}: {exc}",
                machine=self.machine.name,
                program=program_name,
            ) from exc
        stats = hierarchy.snapshot()
        time = self.timing.estimate(
            TimingInputs(
                instructions=recorder.app_instructions,
                l1_misses=stats.l1.misses,
                l2_misses=stats.l2.misses,
                forks=context.total_forks,
                thread_runs=context.total_dispatches,
            )
        )
        # The paper quotes per-run distributions ("64000 threads ... in 46
        # bins" for a typical iteration); report the last th_run's stats.
        sched = None
        for package in context.packages:
            if package.run_history:
                sched = package.run_history[-1]
        return SimResult(
            program=program_name,
            machine=self.machine.name,
            stats=stats,
            app_instructions=recorder.app_instructions,
            thread_instructions=recorder.thread_instructions,
            forks=context.total_forks,
            dispatches=context.total_dispatches,
            sched=sched,
            time=time,
            payload=payload,
        )
