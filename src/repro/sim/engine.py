"""The simulator: fresh state per run, crude-analysis timing at the end."""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from repro.machine.spec import MachineSpec
from repro.machine.timing import TimingInputs, TimingModel
from repro.mem.allocator import AddressSpace
from repro.obs.config import resolve_telemetry
from repro.obs.profile import current_collector
from repro.obs.telemetry import Telemetry
from repro.resilience.errors import ReproError, SimulationError
from repro.resilience.faults import fault_point
from repro.sim.context import SimContext
from repro.sim.result import SimResult
from repro.trace.recorder import TraceRecorder
from repro.verify.config import resolve_verify

TracedProgram = Callable[[SimContext], Any]

#: Replay chunk size: stored batches are coalesced until at least this
#: many run-length entries accumulate, then fed as one kernel batch.
REPLAY_CHUNK_LINES = 1 << 16


def _chunk_batches(ends) -> list[int]:
    """Batch-index cut points whose chunks hold >= REPLAY_CHUNK_LINES
    entries each (except the last).  Returned values are exclusive batch
    indices; ``ends[cut - 1]`` is the chunk's end position."""
    total_batches = len(ends)
    if total_batches == 0:
        return []
    total_lines = int(ends[-1])
    targets = np.arange(
        REPLAY_CHUNK_LINES,
        total_lines + REPLAY_CHUNK_LINES,
        REPLAY_CHUNK_LINES,
        dtype=np.int64,
    )
    cuts = np.unique(np.searchsorted(ends, targets, side="left") + 1)
    cuts = cuts[cuts <= total_batches].tolist()
    if not cuts or cuts[-1] != total_batches:
        cuts.append(total_batches)
    return cuts


class Simulator:
    """Runs traced programs on one machine model.

    Each :meth:`run` gets a fresh cache hierarchy, recorder, and address
    space, so results are independent and deterministic.

    ``verify`` arms the runtime-verification oracles (see
    ``repro.verify``): a :class:`~repro.verify.cache_oracle.CacheOracle`
    audits the hierarchy after every access batch, and every thread
    package the program creates gets a
    :class:`~repro.verify.scheduler_oracle.SchedulerOracle`.  ``None``
    (the default) defers to the process-wide switch
    (``repro.verify.config``), which is off — benchmarks pay nothing.

    ``telemetry`` attaches an observability handle (see ``repro.obs``):
    the run emits structured spans for its phases, a cache sampler
    streams per-interval miss-class series, and the scheduler populates
    the metrics registry.  ``None`` defers to the process-wide handle
    (``repro.obs.config``), which is the disabled singleton — the same
    zero-cost contract as verification.
    """

    def __init__(
        self,
        machine: MachineSpec,
        verify: bool | None = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        self.machine = machine
        self.timing = TimingModel(machine)
        self.verify = verify
        self.telemetry = telemetry

    def run(
        self,
        program: TracedProgram,
        name: str | None = None,
        code_footprint: int = 4096,
        l2_page_mapper=None,
        verify: bool | None = None,
        telemetry: Telemetry | None = None,
        capture=None,
    ) -> SimResult:
        """Simulate ``program`` and return its result.

        ``code_footprint`` is the bytes of kernel code charged as one-time
        compulsory instruction-side misses (Section 4's simulations
        "exclude program initialization costs" but include the resident
        loop code; 4 KB covers every kernel in the paper).
        ``l2_page_mapper`` optionally models a physically-indexed L2
        behind a virtual-to-physical page table (repro.mem.paging).
        ``verify`` overrides the simulator-level and process-wide
        verification switches for this one run; ``telemetry`` does the
        same for the observability handle.  ``capture`` optionally
        attaches a :class:`repro.trace.store.TraceCapture` tap recording
        every data batch for the content-addressed trace store (mutually
        exclusive with ``l2_page_mapper``: replay rebuilds the hierarchy
        without a page table, so a mapped run must not be stored).
        """
        program_name = name or getattr(program, "__name__", "program")
        if capture is not None and l2_page_mapper is not None:
            raise ValueError(
                "trace capture does not support an L2 page mapper"
            )
        verify_run = resolve_verify(verify, self.verify)
        obs = resolve_telemetry(telemetry, self.telemetry)
        fault_point("sim.run", machine=self.machine.name, program=program_name)
        bus = obs.bus
        base_depth = bus.depth()
        if obs.enabled:
            bus.begin(
                "sim.run", machine=self.machine.name, program=program_name
            )
            bus.begin("sim.setup")
        try:
            hierarchy = self.machine.build_hierarchy(l2_page_mapper)
            if capture is not None:
                hierarchy.tap = capture
            recorder = TraceRecorder(hierarchy)
            # Stagger allocations by a few L2 lines so equal-sized arrays do
            # not alias the same sets exactly (a scaled-cache artifact; real
            # allocators and page placement provide the same spreading).
            space = AddressSpace(stagger=3 * self.machine.l2.line_size)
            context = SimContext(
                machine=self.machine,
                hierarchy=hierarchy,
                recorder=recorder,
                space=space,
                verify=verify_run,
                obs=obs,
            )
            if verify_run:
                from repro.verify.cache_oracle import CacheOracle

                hierarchy.oracle = CacheOracle(
                    machine=self.machine.name, program=program_name
                )
                hierarchy.oracle.obs = obs
            sampler = None
            if obs.enabled:
                from repro.obs.sampler import CacheSampler

                sampler = CacheSampler(obs, program=program_name)
                hierarchy.observer = sampler
            profiler = None
            collector = current_collector()
            if collector is not None:
                from repro.obs.profile import LocalityProfiler

                profiler = LocalityProfiler(
                    program=program_name,
                    machine=self.machine.name,
                    space=space,
                    obs=obs,
                )
                hierarchy.profiler = profiler
                context.profiler = profiler
            if code_footprint:
                hierarchy.charge_code_footprint(code_footprint)
            if obs.enabled:
                bus.end()  # sim.setup
                bus.begin("sim.program")
            try:
                payload = program(context)
            except ReproError:
                raise  # already structured (e.g. an armed fault at an inner site)
            except (KeyboardInterrupt, SystemExit):
                raise
            except Exception as exc:
                raise SimulationError(
                    f"{type(exc).__name__}: {exc}",
                    machine=self.machine.name,
                    program=program_name,
                ) from exc
            finally:
                if obs.enabled:
                    bus.end()  # sim.program
            if verify_run and hierarchy.oracle is not None:
                with bus.span("verify.final_check"):
                    hierarchy.oracle.final_check(hierarchy)
            thread_faults: list = []
            for package in context.packages:
                report = getattr(package, "fault_report", None)
                if report is not None:
                    thread_faults.extend(report())
            if sampler is not None:
                sampler.sample(hierarchy)  # flush the tail interval
            if profiler is not None:
                profiler.finish(hierarchy)  # flush the tail timeline sample
                collector.add(profiler)
            stats = hierarchy.snapshot()
            time = self.timing.estimate(
                TimingInputs(
                    instructions=recorder.app_instructions,
                    l1_misses=stats.l1.misses,
                    l2_misses=stats.l2.misses,
                    forks=context.total_forks,
                    thread_runs=context.total_dispatches,
                )
            )
        finally:
            # Close sim.run (and sim.setup, if the program raised inside
            # it) without touching any enclosing scope's spans.
            bus.unwind(base_depth)
        if obs.enabled:
            metrics = obs.metrics
            metrics.counter("sim.runs").inc()
            metrics.counter("sim.forks").inc(context.total_forks)
            metrics.counter("sim.dispatches").inc(context.total_dispatches)
            metrics.histogram("sim.modeled_seconds").observe(time.total)
        # The paper quotes per-run distributions ("64000 threads ... in 46
        # bins" for a typical iteration); report the chronologically last
        # th_run's stats.  Runs are stamped with a process-wide dispatch
        # sequence, so a program that creates package B but runs package A
        # last reports A's distribution, not B's.
        sched = max(
            (stats for package in context.packages for stats in package.run_history),
            key=lambda stats: stats.seq,
            default=None,
        )
        return SimResult(
            program=program_name,
            machine=self.machine.name,
            stats=stats,
            app_instructions=recorder.app_instructions,
            thread_instructions=recorder.thread_instructions,
            forks=context.total_forks,
            dispatches=context.total_dispatches,
            sched=sched,
            time=time,
            payload=payload,
            thread_faults=thread_faults,
            verified=verify_run,
        )

    def replay(
        self,
        stored,
        verify: bool | None = None,
        telemetry: Telemetry | None = None,
    ) -> SimResult:
        """Replay a stored trace (:class:`repro.trace.store.StoredTrace`)
        instead of re-running the traced program.

        The stored stream is the *complete* record of the run's data
        side — every ``access_data`` batch verbatim, boundaries included
        — so feeding it back through a fresh hierarchy reproduces the
        cache statistics bit for bit.  Instruction fetches only bump
        order-independent counters, so the stored totals are charged in
        one call; forks, dispatches and the final scheduling
        distribution come from the header, which is everything the
        timing model and :class:`SimResult` need.  ``payload`` is
        ``None``: replay reproduces *statistics*, not the program's
        numeric output.
        """
        program_name = stored.program
        if stored.machine != self.machine.name:
            raise ValueError(
                f"stored trace is for machine {stored.machine!r}, "
                f"not {self.machine.name!r}"
            )
        if stored.header["line_bits"] != self.machine.l1d.line_bits:
            raise ValueError(
                "stored trace L1D line size does not match this machine"
            )
        verify_run = resolve_verify(verify, self.verify)
        obs = resolve_telemetry(telemetry, self.telemetry)
        fault_point("sim.run", machine=self.machine.name, program=program_name)
        bus = obs.bus
        base_depth = bus.depth()
        if obs.enabled:
            bus.begin(
                "sim.replay", machine=self.machine.name, program=program_name
            )
        try:
            hierarchy = self.machine.build_hierarchy()
            if verify_run:
                from repro.verify.cache_oracle import CacheOracle

                hierarchy.oracle = CacheOracle(
                    machine=self.machine.name, program=program_name
                )
                hierarchy.oracle.obs = obs
            sampler = None
            if obs.enabled:
                from repro.obs.sampler import CacheSampler

                sampler = CacheSampler(obs, program=program_name)
                hierarchy.observer = sampler
            if stored.header["code_footprint"]:
                hierarchy.charge_code_footprint(
                    stored.header["code_footprint"]
                )
            from repro.trace.replay import (
                fast_replay_supported,
                replay_stream,
            )

            if fast_replay_supported(hierarchy, stored):
                # Vectorized path: direct-mapped L1D, no sidecars — the
                # whole stream as a handful of numpy passes plus the
                # ordinary L2 kernel over the (much smaller) miss
                # stream.  Byte-identical to the dict kernel.
                replay_stream(hierarchy, stored)
            else:
                access = hierarchy.access_data
                lines, counts = stored.lines, stored.counts
                ends, writes = stored.batch_ends, stored.batch_writes
                # Merging adjacent batches preserves every statistic —
                # the expanded reference sequence is unchanged, and the
                # kernel, L2 forwarding, and read/write bookkeeping
                # depend only on that sequence — so replay coalesces
                # the (often tiny) recorded batches into large
                # contiguous chunks, amortizing per-batch overhead.
                # The memory-mapped views are sliced per chunk and
                # handed to the dict-based kernel as lists (its fastest
                # input form); the file itself is read zero-copy
                # through the page cache.
                cuts = _chunk_batches(ends)
                cum_writes = np.concatenate(
                    ([0], np.cumsum(writes, dtype=np.int64))
                )
                start = prev = 0
                for cut in cuts:
                    end = int(ends[cut - 1])
                    access(
                        lines[start:end].tolist(),
                        counts[start:end].tolist(),
                        int(cum_writes[cut] - cum_writes[prev]),
                    )
                    start, prev = end, cut
            hierarchy.fetch_instructions(
                stored.header["app_instructions"]
                + stored.header["thread_instructions"]
            )
            if verify_run and hierarchy.oracle is not None:
                with bus.span("verify.final_check"):
                    hierarchy.oracle.final_check(hierarchy)
            if sampler is not None:
                sampler.sample(hierarchy)
            stats = hierarchy.snapshot()
            time = self.timing.estimate(
                TimingInputs(
                    instructions=stored.header["app_instructions"],
                    l1_misses=stats.l1.misses,
                    l2_misses=stats.l2.misses,
                    forks=stored.header["forks"],
                    thread_runs=stored.header["dispatches"],
                )
            )
        finally:
            bus.unwind(base_depth)
        if obs.enabled:
            obs.metrics.counter("sim.replays").inc()
            obs.metrics.histogram("sim.modeled_seconds").observe(time.total)
        return SimResult(
            program=program_name,
            machine=self.machine.name,
            stats=stats,
            app_instructions=stored.header["app_instructions"],
            thread_instructions=stored.header["thread_instructions"],
            forks=stored.header["forks"],
            dispatches=stored.header["dispatches"],
            sched=stored.sched_stats(),
            time=time,
            payload=None,
            thread_faults=[],
            verified=verify_run,
        )
