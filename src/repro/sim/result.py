"""Simulation results, shaped like the paper's tables."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.cache.hierarchy import HierarchyStats
from repro.core.stats import SchedulingStats
from repro.machine.timing import TimeBreakdown


@dataclass(frozen=True)
class SimResult:
    """Everything measured from simulating one program version.

    ``modeled_seconds`` corresponds to a performance-table cell (Tables
    2, 4, 6, 8); the reference/miss fields correspond to a column of a
    cache table (Tables 3, 5, 7, 9).
    """

    program: str
    machine: str
    stats: HierarchyStats
    app_instructions: int
    thread_instructions: int
    forks: int
    dispatches: int
    sched: SchedulingStats | None
    time: TimeBreakdown
    payload: Any = None
    #: Structured degradations recorded by guarded thread packages during
    #: the run (``repro.verify.guarded``): one manifest-ready dict per
    #: quarantined hint vector, captured proc exception, or budget stop.
    thread_faults: list = field(default_factory=list)
    #: Whether the runtime-verification oracles audited this run.
    verified: bool = False

    # -- performance-table view ----------------------------------------
    @property
    def modeled_seconds(self) -> float:
        return self.time.total

    # -- cache-table view (the paper reports thousands) ------------------
    @property
    def inst_fetches(self) -> int:
        """Total instruction fetches (application + thread package)."""
        return self.stats.inst_fetches

    @property
    def data_refs(self) -> int:
        return self.stats.data_refs

    @property
    def l1_misses(self) -> int:
        return self.stats.l1.misses

    @property
    def l1_miss_rate_pct(self) -> float:
        return 100.0 * self.stats.l1_miss_rate

    @property
    def l2_misses(self) -> int:
        return self.stats.l2.misses

    @property
    def l2_miss_rate_pct(self) -> float:
        return 100.0 * self.stats.l2_miss_rate

    @property
    def l2_compulsory(self) -> int:
        return self.stats.l2.compulsory

    @property
    def l2_capacity(self) -> int:
        return self.stats.l2.capacity

    @property
    def l2_conflict(self) -> int:
        return self.stats.l2.conflict

    def cache_table_column(self) -> dict[str, float]:
        """One column of a paper cache table (counts raw, rates percent)."""
        return {
            "I fetches": self.inst_fetches,
            "D references": self.data_refs,
            "L1 misses": self.l1_misses,
            "L1 rate %": round(self.l1_miss_rate_pct, 1),
            "L2 misses": self.l2_misses,
            "L2 rate %": round(self.l2_miss_rate_pct, 1),
            "L2 compulsory": self.l2_compulsory,
            "L2 capacity": self.l2_capacity,
            "L2 conflict": self.l2_conflict,
        }

    def summary(self) -> str:
        """One-line human summary."""
        parts = [
            f"{self.program} on {self.machine}:",
            f"{self.modeled_seconds:.2f}s modeled,",
            f"{self.data_refs:,} data refs,",
            f"L1 {self.l1_misses:,} / L2 {self.l2_misses:,} misses",
        ]
        if self.sched is not None and self.sched.threads:
            parts.append(f"({self.sched.describe()})")
        return " ".join(parts)
