"""Guarded execution: a thread package that degrades instead of corrupting.

Three failure modes of the bare package become structured, recoverable
events here:

* **Bad hint vectors.**  ``th_fork`` validates hints before they reach
  the bin hash: non-integer, negative, out-of-range (beyond the
  simulated address space's high-water mark), or gap-ordered hints
  quarantine the thread into the fallback (unhinted) bin and record a
  :class:`~repro.resilience.errors.HintError` — the hash table is never
  fed garbage coordinates.  ``strict_hints`` raises instead.
* **Runaway thread procs.**  A per-thread step budget
  (``thread_budget``, counted in bytecode line events via
  ``sys.settrace``) interrupts a looping proc with a
  :class:`~repro.resilience.errors.ThreadBudgetError` naming the thread,
  so one bad proc cannot hang a whole campaign.
* **Crashing thread procs.**  Exceptions escaping a proc are captured as
  :class:`~repro.resilience.errors.ThreadProcError` records and the bin
  sweep continues — the same graceful-degradation contract
  ``resilience.campaign`` gives whole experiments.

``fault_point("thread.proc")`` fires before every proc so tests (and
``--inject-fault thread.proc``) can prove the capture path works.
"""

from __future__ import annotations

import sys
from typing import Any, Callable

from repro.core.hints import HintVector, MAX_HINTS
from repro.core.package import ThreadPackage
from repro.core.thread import ThreadGroup, ThreadSpec
from repro.resilience.errors import (
    HintError,
    ThreadBudgetError,
    ThreadProcError,
    VerificationError,
)
from repro.resilience.faults import fault_point


def _describe(func: Callable, arg1: Any, arg2: Any) -> str:
    name = getattr(func, "__name__", repr(func))
    return f"{name}({arg1!r}, {arg2!r})"


class GuardedThreadPackage(ThreadPackage):
    """A :class:`ThreadPackage` with validated forks and contained procs.

    Parameters (beyond the base package's)
    --------------------------------------
    thread_budget:
        Maximum bytecode line events one thread proc may execute; 0
        disables the budget.  Enforced with a per-dispatch trace hook, so
        it is meant for verification runs, not benchmarks.
    max_address:
        Upper bound for valid hint addresses.  Defaults to the simulated
        address space's high-water mark at fork time (hints must point at
        allocated data), or unbounded when running untraced.
    strict_hints:
        Raise :class:`HintError` at ``th_fork`` instead of quarantining.
    """

    def __init__(
        self,
        *args,
        thread_budget: int = 0,
        max_address: int | None = None,
        strict_hints: bool = False,
        **kwargs,
    ) -> None:
        if thread_budget < 0:
            raise ValueError(
                f"thread_budget must be non-negative, got {thread_budget}"
            )
        super().__init__(*args, **kwargs)
        self.thread_budget = thread_budget
        self.max_address = max_address
        self.strict_hints = strict_hints
        self.hint_errors: list[HintError] = []
        self.proc_errors: list[ThreadProcError] = []
        self.budget_errors: list[ThreadBudgetError] = []
        self.quarantined = 0

    # ------------------------------------------------------------------
    # Hint validation
    # ------------------------------------------------------------------
    def _address_limit(self) -> int | None:
        if self.max_address is not None:
            return self.max_address
        if self.space is not None:
            return self.space.high_water_mark
        return None

    def _validate_hints(
        self, hints: tuple, func: Callable, arg1: Any, arg2: Any
    ) -> HintError | None:
        """The structured problem with ``hints``, or ``None`` if clean."""
        thread = _describe(func, arg1, arg2)
        for position, hint in enumerate(hints, 1):
            if isinstance(hint, bool) or not isinstance(hint, int):
                return HintError(
                    f"hint{position} is {hint!r}, not an address",
                    invariant="hints are addresses",
                    thread=thread,
                )
            if hint < 0:
                return HintError(
                    f"hint{position} is negative ({hint})",
                    invariant="hints are non-negative",
                    thread=thread,
                )
        limit = self._address_limit()
        if limit is not None:
            for position, hint in enumerate(hints, 1):
                if hint >= limit:
                    return HintError(
                        f"hint{position} {hint:#x} is beyond the simulated "
                        f"address space (high water {limit:#x})",
                        invariant="hints are in-range addresses",
                        thread=thread,
                    )
        try:
            HintVector(*hints)
        except ValueError as exc:
            error = HintError(
                str(exc),
                invariant="hints fill leading slots first",
                thread=thread,
            )
            error.__cause__ = exc
            return error
        return None

    # ------------------------------------------------------------------
    # Forking
    # ------------------------------------------------------------------
    def th_fork(
        self,
        func: Callable[[Any, Any], Any],
        arg1: Any = None,
        arg2: Any = None,
        hint1: int = 0,
        hint2: int = 0,
        hint3: int = 0,
    ) -> None:
        """``th_fork`` with hint validation and quarantine.

        A thread with a bad hint vector still runs — in the fallback
        (unhinted) bin, with a :class:`HintError` recorded in
        :attr:`hint_errors` — instead of corrupting the bin hash or
        being dropped.
        """
        error = self._validate_hints((hint1, hint2, hint3), func, arg1, arg2)
        if error is not None:
            if self.strict_hints:
                raise error
            self.hint_errors.append(error)
            self.quarantined += 1
            if self.obs.enabled:
                self.obs.bus.instant(
                    "sched.hint_quarantine",
                    tid=self._obs_tid,
                    thread=error.context().get("thread"),
                    message=error.message,
                )
                self.obs.metrics.counter("sched.hints_quarantined").inc()
            hint1 = hint2 = hint3 = 0
        self._fork_impl(func, arg1, arg2, hint1, hint2, hint3)

    def fork_hinted(
        self,
        func: Callable[[Any, Any], Any],
        arg1: Any = None,
        arg2: Any = None,
        hints: tuple[int, ...] = (),
    ) -> None:
        """Fork with a hint *sequence* of any declared length.

        More than :data:`~repro.core.hints.MAX_HINTS` hints raises a
        structured :class:`HintError` — silently truncating would change
        the thread's bin.  Shorter sequences are zero-filled, as in the
        paper.
        """
        hints = tuple(hints)
        if len(hints) > MAX_HINTS:
            raise HintError(
                f"{len(hints)} hints supplied but th_fork takes at most "
                f"{MAX_HINTS}; refusing to truncate {hints!r}",
                invariant="at most MAX_HINTS hints",
                thread=_describe(func, arg1, arg2),
            )
        padded = hints + (0,) * (MAX_HINTS - len(hints))
        self.th_fork(func, arg1, arg2, *padded)

    # ------------------------------------------------------------------
    # Contained dispatch
    # ------------------------------------------------------------------
    def _invoke(self, group: ThreadGroup, index: int, spec: ThreadSpec):
        thread = _describe(spec.func, spec.arg1, spec.arg2)
        try:
            fault_point("thread.proc", thread=thread)
            if self.thread_budget:
                return self._run_budgeted(spec, thread)
            return spec.run()
        except (KeyboardInterrupt, SystemExit):
            raise
        except ThreadBudgetError as exc:
            self.budget_errors.append(exc)
        except VerificationError:
            raise  # oracle violations are not thread failures
        except Exception as exc:
            error = ThreadProcError(
                f"{type(exc).__name__}: {exc}",
                invariant="thread procs return",
                thread=thread,
            )
            error.__cause__ = exc
            self.proc_errors.append(error)
        return None

    def _run_budgeted(self, spec: ThreadSpec, thread: str):
        """Run one proc under a line-event budget (stops infinite loops)."""
        budget = self.thread_budget
        steps = 0

        def tracer(frame, event, arg):
            nonlocal steps
            if event == "line":
                steps += 1
                if steps > budget:
                    raise ThreadBudgetError(
                        f"thread exceeded its budget of {budget} steps",
                        invariant="threads terminate within budget",
                        thread=thread,
                    )
            return tracer

        previous = sys.gettrace()
        sys.settrace(tracer)
        try:
            return spec.run()
        finally:
            sys.settrace(previous)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @property
    def fault_count(self) -> int:
        return (
            len(self.hint_errors)
            + len(self.proc_errors)
            + len(self.budget_errors)
        )

    def fault_report(self) -> list[dict]:
        """All recorded degradations as manifest-ready dicts."""
        report = []
        for kind, errors in (
            ("hint", self.hint_errors),
            ("proc", self.proc_errors),
            ("budget", self.budget_errors),
        ):
            for error in errors:
                entry = {"kind": kind, "message": error.message}
                entry.update(error.context())
                report.append(entry)
        return report


#: The name the issue tracker uses for the wrapper class.
GuardedScheduler = GuardedThreadPackage


def guarded_run(package: GuardedThreadPackage, keep: int = 0):
    """Run all scheduled threads, returning ``(stats, fault_report)``.

    The run always completes the bin sweep; everything that went wrong on
    the way is in the report (empty when the run was clean).
    """
    stats = package.th_run(keep)
    return stats, package.fault_report()
