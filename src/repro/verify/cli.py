"""Command-line entry point: ``repro-verify [--quick] [--seed N]``.

The simulator's self-check harness.  Two stages:

1. **Differential checks** (:mod:`repro.verify.differential`) — trace
   replay determinism, set-assoc ≡ fully-assoc equivalence, and
   hinted-vs-unhinted work conservation.
2. **Oracle smoke run** — a threaded matmul simulated end to end with
   the scheduler and cache oracles armed; any invariant violation
   surfaces as a structured
   :class:`~repro.resilience.errors.VerificationError`.

Exit code 0 when every check passes, 1 otherwise — CI runs
``repro-verify --quick`` on every push.
"""

from __future__ import annotations

import argparse
import sys
from typing import TextIO

from repro.resilience.errors import ConfigError, VerificationError
from repro.resilience.faults import FAULTS


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-verify",
        description=(
            "Self-check the thread-scheduling simulator: differential "
            "cross-checks plus an oracle-audited smoke simulation."
        ),
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small workloads (a few seconds; what CI runs)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=1996,
        metavar="N",
        help="seed for the randomized checks (default: %(default)s)",
    )
    parser.add_argument(
        "--skip-smoke",
        action="store_true",
        help="run only the differential checks, not the oracle smoke run",
    )
    parser.add_argument(
        "--inject-fault",
        action="append",
        default=[],
        metavar="SITE[:MODE[:TIMES]]",
        help=(
            "arm a deterministic fault (e.g. verify.oracle:fail) to prove "
            "the violation-reporting path (repeatable)"
        ),
    )
    return parser


def _oracle_smoke(quick: bool, out: TextIO) -> bool:
    """Simulate a threaded matmul with every oracle armed; True on pass."""
    from repro.apps.matmul.config import MatmulConfig
    from repro.apps.matmul.programs import threaded as matmul_threaded
    from repro.machine.presets import DEFAULT_SCALE, r8000
    from repro.sim.engine import Simulator

    n = 16 if quick else 48
    simulator = Simulator(r8000(DEFAULT_SCALE), verify=True)
    try:
        result = simulator.run(matmul_threaded(MatmulConfig(n=n)))
    except VerificationError as exc:
        print(f"[FAIL] oracle smoke run — {exc}", file=out)
        return False
    print(
        f"[PASS] oracle smoke run — {result.data_refs:,} data refs and "
        f"{result.dispatches:,} dispatches audited clean",
        file=out,
    )
    return True


def main(argv: list[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        for spec in args.inject_fault:
            FAULTS.arm_from_spec(spec)
    except ConfigError as exc:
        parser.error(str(exc))

    from repro.verify.differential import run_all_checks

    out = sys.stdout
    print(
        f"repro-verify: {'quick' if args.quick else 'full'} self-check, "
        f"seed {args.seed}",
        file=out,
    )
    failed = 0
    try:
        outcomes = run_all_checks(
            quick=args.quick, seed=args.seed, verify=True
        )
    except VerificationError as exc:
        print(f"[FAIL] differential checks — oracle violation: {exc}", file=out)
        failed += 1
        outcomes = []
    for outcome in outcomes:
        print(outcome, file=out)
        if not outcome.passed:
            failed += 1
    if not args.skip_smoke:
        if not _oracle_smoke(args.quick, out):
            failed += 1
    if failed:
        print(f"\n{failed} self-check(s) FAILED.", file=out)
        return 1
    print("\nAll self-checks passed.", file=out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
