"""Runtime verification: invariant oracles, guarded execution,
differential self-checks.

Three layers, each independently optional (see DESIGN.md,
"Verification"):

* :mod:`repro.verify.scheduler_oracle` / :mod:`repro.verify.cache_oracle`
  — re-derive the scheduler's and cache simulator's invariants from
  observed events; attached by ``Simulator(..., verify=True)``.
* :mod:`repro.verify.guarded` — a thread package that validates hint
  vectors, budgets runaway procs, and contains proc exceptions.
* :mod:`repro.verify.differential` — cross-checks two independent
  computations of the same thing; driven by the ``repro-verify`` CLI.

The process-wide switch lives in :mod:`repro.verify.config`, the only
submodule imported eagerly: the rest load on first attribute access
(PEP 562) because :mod:`repro.verify.differential` imports the simulator,
which imports this package back for the switch.
"""

from __future__ import annotations

from repro.verify.config import (
    resolve_verify,
    set_verification,
    verification,
    verification_enabled,
)

_LAZY = {
    "CacheOracle": ("repro.verify.cache_oracle", "CacheOracle"),
    "SchedulerOracle": ("repro.verify.scheduler_oracle", "SchedulerOracle"),
    "GuardedThreadPackage": ("repro.verify.guarded", "GuardedThreadPackage"),
    "GuardedScheduler": ("repro.verify.guarded", "GuardedScheduler"),
    "guarded_run": ("repro.verify.guarded", "guarded_run"),
    "CheckOutcome": ("repro.verify.differential", "CheckOutcome"),
    "run_all_checks": ("repro.verify.differential", "run_all_checks"),
}

__all__ = [
    "resolve_verify",
    "set_verification",
    "verification",
    "verification_enabled",
    *sorted(_LAZY),
]


def __getattr__(name: str):
    try:
        module_name, attribute = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    from importlib import import_module

    value = getattr(import_module(module_name), attribute)
    globals()[name] = value
    return value


def __dir__():
    return sorted(__all__)
