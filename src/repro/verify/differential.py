"""Differential self-checks: prove the simulator against itself.

Three cross-checks, each comparing two independent computations that
must agree (the style SynchroTrace-like trace-driven simulators use to
earn trust in replay determinism):

* **Trace-replay determinism** — record a threaded matmul's reference
  stream to a din-format trace, then replay the *same recorded trace*
  twice through fresh hierarchies: the two runs (and a re-recording of
  the trace itself) must be byte-identical.
* **Set-assoc ≡ fully-assoc equivalence** — a
  :class:`~repro.cache.set_assoc.SetAssociativeCache` configured with
  ``associativity == num_lines`` (one set) is, by definition, a
  fully-associative LRU cache; it must agree with
  :class:`~repro.cache.fully_assoc.FullyAssociativeLRU` on every single
  access of a seeded random stream, and end with the identical LRU
  stack.
* **Schedule work conservation** — hinted and unhinted schedules of the
  same fork sequence must execute the same *multiset* of threads (each
  exactly once) touching the same multiset of data: locality scheduling
  may reorder work, never change it.

Each check returns a :class:`CheckOutcome`; the ``repro-verify`` CLI
renders them as a table and fails on any mismatch.
"""

from __future__ import annotations

import io
import random
from collections import Counter
from dataclasses import dataclass

from repro.apps.matmul.config import MatmulConfig
from repro.apps.matmul.programs import threaded as matmul_threaded
from repro.cache.config import CacheConfig
from repro.cache.fully_assoc import FullyAssociativeLRU
from repro.cache.set_assoc import SetAssociativeCache
from repro.core.package import ThreadPackage
from repro.machine.presets import DEFAULT_SCALE, r8000
from repro.sim.engine import Simulator
from repro.trace.dinero import DinWriter, read_din, simulate_din
from repro.verify.scheduler_oracle import SchedulerOracle


@dataclass
class CheckOutcome:
    """One differential check's verdict."""

    name: str
    passed: bool
    detail: str = ""

    def __str__(self) -> str:
        mark = "PASS" if self.passed else "FAIL"
        text = f"[{mark}] {self.name}"
        if self.detail:
            text += f" — {self.detail}"
        return text


# ----------------------------------------------------------------------
# 1. Trace-replay determinism
# ----------------------------------------------------------------------
def _record_matmul_trace(n: int, verify: bool) -> tuple[str, str]:
    """Run the threaded matmul once, teeing its reference stream into a
    din trace; return ``(trace_text, rendered_result)``."""
    simulator = Simulator(r8000(DEFAULT_SCALE), verify=verify)
    buffer = io.StringIO()
    writer = DinWriter(buffer)
    inner = matmul_threaded(MatmulConfig(n=n))

    def recording_program(ctx):
        ctx.recorder = writer.wrap(ctx.recorder)
        return inner(ctx)

    recording_program.__name__ = inner.__name__
    result = simulator.run(recording_program)
    rendered = repr(sorted(result.cache_table_column().items()))
    return buffer.getvalue(), rendered


def check_trace_determinism(quick: bool = True, verify: bool = True) -> CheckOutcome:
    """Record a trace, replay it twice, re-record it: all byte-identical."""
    n = 16 if quick else 48
    trace_a, rendered_a = _record_matmul_trace(n, verify)
    trace_b, rendered_b = _record_matmul_trace(n, verify)
    if trace_a != trace_b or rendered_a != rendered_b:
        return CheckOutcome(
            "trace-replay determinism",
            False,
            "re-recording the same program produced a different trace"
            if trace_a != trace_b
            else "same trace, different cache statistics",
        )
    l1 = CacheConfig("L1", 1024, 32, 1)
    l2 = CacheConfig("L2", 16 * 1024, 128, 4)
    replays = []
    for _ in range(2):
        stats = simulate_din(read_din(io.StringIO(trace_a)), l1, l2)
        replays.append(
            (
                stats.l1.as_dict(),
                stats.l2.as_dict(),
                stats.inst_fetches,
                stats.data_reads,
                stats.data_writes,
            )
        )
    if replays[0] != replays[1]:
        return CheckOutcome(
            "trace-replay determinism",
            False,
            "replaying the identical recorded trace twice diverged",
        )
    references = trace_a.count("\n")
    return CheckOutcome(
        "trace-replay determinism",
        True,
        f"{references:,} recorded references, two recordings and two "
        "replays byte-identical",
    )


# ----------------------------------------------------------------------
# 2. Set-assoc ≡ fully-assoc equivalence
# ----------------------------------------------------------------------
def check_assoc_equivalence(
    quick: bool = True, seed: int = 1996
) -> CheckOutcome:
    """A one-set set-associative cache must *be* the fully-assoc LRU."""
    capacity = 16 if quick else 64
    accesses = 5_000 if quick else 50_000
    config = CacheConfig(
        "equiv", size=capacity * 32, line_size=32, associativity=capacity
    )
    assert config.num_sets == 1
    real = SetAssociativeCache(config)
    reference = FullyAssociativeLRU(capacity)
    rng = random.Random(seed)
    # A mix of hot lines (LRU churn) and a long tail (evictions).
    for position in range(accesses):
        if rng.random() < 0.5:
            line = rng.randrange(capacity * 2)
        else:
            line = rng.randrange(capacity * 64)
        hit_real = real.access(line)
        hit_reference = reference.access(line)
        if hit_real != hit_reference:
            return CheckOutcome(
                "set-assoc ≡ fully-assoc",
                False,
                f"access {position} (line {line}): set-assoc "
                f"{'hit' if hit_real else 'miss'}, fully-assoc "
                f"{'hit' if hit_reference else 'miss'}",
            )
    if real.lru_order(0) != reference.lru_order():
        return CheckOutcome(
            "set-assoc ≡ fully-assoc",
            False,
            "final LRU stacks differ",
        )
    return CheckOutcome(
        "set-assoc ≡ fully-assoc",
        True,
        f"{accesses:,} accesses agreed hit-for-hit; final LRU stacks "
        "identical",
    )


# ----------------------------------------------------------------------
# 3. Schedule work conservation (hinted vs unhinted)
# ----------------------------------------------------------------------
def check_work_conservation(
    quick: bool = True, seed: int = 1996, verify: bool = True
) -> CheckOutcome:
    """Hinted and unhinted schedules run the same multiset of work."""
    threads = 200 if quick else 2_000
    rng = random.Random(seed)
    workload = [
        (tid, rng.randrange(1, 1 << 20) * 8) for tid in range(threads)
    ]

    def run_schedule(hinted: bool) -> tuple[Counter, Counter]:
        log: list[tuple[int, int]] = []

        def proc(tid, address):
            log.append((tid, address))

        package = ThreadPackage(l2_size=64 * 1024)
        if verify:
            package.attach_oracle(SchedulerOracle(program="work-conservation"))
        for tid, address in workload:
            if hinted:
                package.th_fork(proc, tid, address, hint1=address)
            else:
                package.th_fork(proc, tid, address)
        package.th_run()
        executed = Counter(tid for tid, _ in log)
        touched = Counter(address for _, address in log)
        return executed, touched

    hinted_exec, hinted_touch = run_schedule(hinted=True)
    unhinted_exec, unhinted_touch = run_schedule(hinted=False)
    if any(count != 1 for count in hinted_exec.values()):
        return CheckOutcome(
            "schedule work conservation",
            False,
            "a hinted thread ran zero or multiple times",
        )
    if hinted_exec != unhinted_exec:
        return CheckOutcome(
            "schedule work conservation",
            False,
            "hinted and unhinted schedules executed different thread sets",
        )
    if hinted_touch != unhinted_touch:
        return CheckOutcome(
            "schedule work conservation",
            False,
            "hinted and unhinted schedules touched different data",
        )
    return CheckOutcome(
        "schedule work conservation",
        True,
        f"{threads:,} threads: identical execution and access multisets "
        "under both schedules",
    )


# ----------------------------------------------------------------------
def run_all_checks(
    quick: bool = True, seed: int = 1996, verify: bool = True
) -> list[CheckOutcome]:
    """Every differential check, in a deterministic order."""
    return [
        check_trace_determinism(quick=quick, verify=verify),
        check_assoc_equivalence(quick=quick, seed=seed),
        check_work_conservation(quick=quick, seed=seed, verify=verify),
    ]
