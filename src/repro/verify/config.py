"""The process-wide verification switch.

Oracles are opt-in: the hot simulation paths stay unpolluted unless the
caller asks for runtime verification.  Three layers can ask, from most to
least specific:

1. ``Simulator.run(..., verify=True/False)`` — one run;
2. ``Simulator(machine, verify=True/False)`` — one simulator;
3. the process-wide switch here — flipped by ``repro-experiments
   --verify``, ``repro-verify``, and the test suite, so experiment
   modules never need a ``verify`` parameter threaded through them.

``None`` at any layer defers to the next one down; the global default is
off.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

_ENABLED = False


def verification_enabled() -> bool:
    """Whether the process-wide verification switch is on."""
    return _ENABLED


def set_verification(enabled: bool) -> bool:
    """Flip the process-wide switch; returns the previous value."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(enabled)
    return previous


@contextmanager
def verification(enabled: bool = True) -> Iterator[None]:
    """Enable (or disable) verification for the duration of a block."""
    previous = set_verification(enabled)
    try:
        yield
    finally:
        set_verification(previous)


def resolve_verify(*levels: bool | None) -> bool:
    """The effective verify flag: the first non-``None`` of ``levels``,
    falling back to the process-wide switch."""
    for level in levels:
        if level is not None:
            return bool(level)
    return _ENABLED
