"""Scheduler invariant oracle: checks the thread package's own claims.

The paper's scheduler makes four observable promises (Sections 2.3, 3.2):

* threads are **run-to-completion** — no interleaving, no nesting, no
  forks from inside a running thread's dispatch;
* every thread scheduled when ``th_run`` starts is dispatched **exactly
  once** during that run (re-runs under ``keep`` are separate runs);
* bins are traversed in **allocation order** (the ready list) when the
  creation policy is active;
* with the dependency extension, a thread never runs before **all of its
  declared predecessors** have completed.

:class:`SchedulerOracle` observes the package through narrow hooks
(fork, bin start, dispatch start/end, run start/end) that cost one
attribute test when no oracle is attached, and re-derives each claim
independently of the scheduler's own data structures.  A violation
raises :class:`~repro.resilience.errors.VerificationError` naming the
thread and invariant.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.thread import ThreadSpec
from repro.obs.telemetry import DISABLED
from repro.resilience.errors import FaultInjected, VerificationError
from repro.resilience.faults import fault_point


@dataclass
class _ThreadRecord:
    """The oracle's independent view of one forked thread."""

    spec: ThreadSpec          # pins the spec so id() stays unique
    fork_order: int
    bin_key: tuple
    runs: int = 0


def _describe(spec: ThreadSpec) -> str:
    func = getattr(spec.func, "__name__", repr(spec.func))
    return f"{func}({spec.arg1!r}, {spec.arg2!r})"


class SchedulerOracle:
    """Re-derives the scheduler's invariants from observed events."""

    #: Observability handle; the context overwrites this with the run's
    #: telemetry so violations land in the event log as well as raising.
    obs = DISABLED

    def __init__(
        self,
        machine: str | None = None,
        program: str | None = None,
        check_bin_order: bool = True,
    ) -> None:
        self.machine = machine
        self.program = program
        self.check_bin_order = check_bin_order
        self.runs_verified = 0
        self.dispatches_verified = 0
        # Bin allocation bookkeeping (allocation order == ready order).
        self._bin_alloc: dict[int, int] = {}
        self._bins: list = []  # pins bin objects so id() stays unique
        # Forked threads, keyed by id(spec) (records pin the specs).
        self._forked: dict[int, _ThreadRecord] = {}
        self._active: ThreadSpec | None = None
        # Per-run state.
        self._in_run = False
        self._run_ordered = False
        self._last_bin_index = -1
        self._expected: dict[int, int] | None = None
        # Dependency extension bookkeeping.
        self._dep_ids: dict[int, int] = {}
        self._dep_preds: dict[int, tuple[int, ...]] = {}
        self._dep_done: set[int] = set()

    # ------------------------------------------------------------------
    def _fail(self, invariant: str, message: str, thread: str | None = None) -> None:
        if self.obs.enabled:
            self.obs.instant(
                "verify.violation",
                oracle="scheduler",
                invariant=invariant,
                thread=thread,
                message=message,
            )
            self.obs.metrics.counter("verify.violations").inc()
        raise VerificationError(
            message,
            machine=self.machine,
            program=self.program,
            oracle="scheduler",
            invariant=invariant,
            thread=thread,
        )

    # ------------------------------------------------------------------
    # Fork-side hooks
    # ------------------------------------------------------------------
    def on_bin_allocated(self, bin_) -> None:
        self._bin_alloc[id(bin_)] = len(self._bins)
        self._bins.append(bin_)

    def on_fork(self, bin_, group, index, spec: ThreadSpec) -> None:
        if self._active is not None:
            self._fail(
                "run-to-completion",
                "th_fork observed while a thread was being dispatched "
                f"({_describe(self._active)})",
                thread=_describe(spec),
            )
        if id(bin_) not in self._bin_alloc:
            self._fail(
                "bins allocated before use",
                f"thread forked into bin {bin_.key} that the table never "
                "reported as allocated",
                thread=_describe(spec),
            )
        self._forked[id(spec)] = _ThreadRecord(
            spec=spec, fork_order=len(self._forked), bin_key=bin_.key
        )

    def on_dep_fork(
        self, thread_id: int, spec: ThreadSpec, predecessors: tuple[int, ...]
    ) -> None:
        """Register a dependent thread and the edges it must wait on."""
        self._dep_ids[id(spec)] = thread_id
        self._dep_preds[thread_id] = tuple(predecessors)

    # ------------------------------------------------------------------
    # Run-side hooks
    # ------------------------------------------------------------------
    def on_run_start(self, pending, ordered: bool) -> None:
        """A ``th_run`` begins over the ``pending`` thread specs.

        The exactly-once expectation is built from the oracle's *own*
        fork records, not from ``pending`` — a scheduler whose ready
        list silently lost a bin would otherwise under-report its own
        pending set and the loss would go unnoticed.  ``pending`` is
        cross-checked against the fork records instead.
        """
        self._in_run = True
        self._run_ordered = ordered and self.check_bin_order
        self._last_bin_index = -1
        pending_ids = {id(spec) for spec in pending}
        for spec_id, record in self._forked.items():
            if spec_id not in pending_ids:
                self._fail(
                    "exactly-once dispatch",
                    "forked thread missing from the run's pending set "
                    "(lost bin or corrupted ready list?)",
                    thread=_describe(record.spec),
                )
        self._expected = {spec_id: 0 for spec_id in self._forked}

    def on_bin_start(self, bin_) -> None:
        if not (self._in_run and self._run_ordered):
            return
        index = self._bin_alloc.get(id(bin_))
        if index is None:
            self._fail(
                "bin traversal in allocation order",
                f"run visited bin {bin_.key} that was never allocated",
            )
        if index <= self._last_bin_index:
            self._fail(
                "bin traversal in allocation order",
                f"run visited bin {bin_.key} (allocation index {index}) "
                f"after allocation index {self._last_bin_index}",
            )
        self._last_bin_index = index

    def on_dispatch_start(self, spec: ThreadSpec) -> None:
        if self._active is not None:
            self._fail(
                "run-to-completion",
                f"thread {_describe(spec)} dispatched while "
                f"{_describe(self._active)} was still running",
                thread=_describe(spec),
            )
        record = self._forked.get(id(spec))
        if record is None:
            self._fail(
                "only forked threads run",
                "dispatched a thread that was never forked",
                thread=_describe(spec),
            )
        thread_id = self._dep_ids.get(id(spec))
        if thread_id is not None:
            blocked = [
                p for p in self._dep_preds.get(thread_id, ())
                if p not in self._dep_done
            ]
            if blocked:
                self._fail(
                    "dependency order",
                    f"thread {thread_id} ran before predecessor(s) "
                    f"{blocked}",
                    thread=_describe(spec),
                )
        self._active = spec

    def on_dispatch_end(self, spec: ThreadSpec) -> None:
        self._active = None
        self.dispatches_verified += 1
        record = self._forked.get(id(spec))
        if record is not None:
            record.runs += 1
        if self._expected is not None:
            if id(spec) in self._expected:
                self._expected[id(spec)] += 1
            elif self._in_run:
                self._fail(
                    "exactly-once dispatch",
                    "dispatched a thread that was not pending when the "
                    "run started",
                    thread=_describe(spec),
                )
        thread_id = self._dep_ids.get(id(spec))
        if thread_id is not None:
            self._dep_done.add(thread_id)

    def on_run_end(self, keep: int = 0) -> None:
        """A ``th_run`` finished; every pending thread ran exactly once."""
        self._fault_point()
        expected = self._expected or {}
        for spec_id, runs in expected.items():
            if runs == 1:
                continue
            record = self._forked.get(spec_id)
            thread = _describe(record.spec) if record else f"spec {spec_id}"
            self._fail(
                "exactly-once dispatch",
                f"thread dispatched {runs} times in one run"
                if runs
                else "scheduled thread never dispatched during the run",
                thread=thread,
            )
        self._in_run = False
        self._expected = None
        self.runs_verified += 1
        if self.obs.enabled:
            self.obs.metrics.counter("verify.sched_runs").inc()
        if not keep:
            # The package destroys the thread records; drop ours too so
            # a long campaign's oracle does not grow without bound.
            self._forked.clear()
            self._dep_ids.clear()
            self._dep_preds.clear()
            self._dep_done.clear()

    # ------------------------------------------------------------------
    def _fault_point(self) -> None:
        """The ``verify.oracle`` injection site (see CacheOracle)."""
        try:
            fault_point(
                "verify.oracle", machine=self.machine, program=self.program
            )
        except FaultInjected as exc:
            raise VerificationError(
                f"injected oracle violation: {exc.message}",
                machine=self.machine,
                program=self.program,
                oracle="scheduler",
                invariant="injected",
                site="verify.oracle",
            ) from exc
