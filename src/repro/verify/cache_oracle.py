"""Cache invariant oracle: checks the simulator's own bookkeeping.

The paper's miss classification (Section 4, following Hill & Smith) is a
set of checkable identities.  :class:`CacheOracle` re-checks them after
every simulated access batch, per level:

* ``hits + misses == accesses`` (hits are derived, so equivalently
  ``0 <= misses <= accesses``), and every counter is non-negative;
* ``compulsory + capacity + conflict == misses`` — the classification
  partitions the misses exactly;
* ``compulsory == |lines ever touched|`` — a line's first reference, and
  only its first, is compulsory;
* counters are monotonically non-decreasing across batches;
* optionally, LRU stack inclusion: the fully-associative shadow of equal
  capacity misses at most ``misses + inclusion_slack`` times.  This is
  **not** a theorem for set-associative caches — a line can survive in
  its own quiet set while more than ``capacity`` distinct lines churn
  the rest of the cache, so the shadow can miss where the real cache
  hits.  The paper's own workloads exhibit it: the scaled R8000's
  direct-mapped L1 shows ~0.2% anti-inclusion on the threaded matmul
  (1,461 shadow misses vs 1,458 real misses at n=16).  The check is
  therefore **off by default** (``check_inclusion=False``) and exists
  for traces engineered to respect inclusion, e.g. single-set tests.

Structural checks (set occupancy <= associativity, lines stored in the
set they map to, shadow occupancy <= capacity) are O(cache size), so they
run on :meth:`final_check` and every ``structural_every`` batches rather
than on each batch.

A violation raises :class:`~repro.resilience.errors.VerificationError`
naming the cache level and the broken invariant, so a corrupted LRU
update surfaces as a structured error instead of a silently wrong table.
"""

from __future__ import annotations

from repro.cache.classify import ClassifyingCache
from repro.obs.telemetry import DISABLED
from repro.resilience.errors import FaultInjected, VerificationError
from repro.resilience.faults import fault_point


class CacheOracle:
    """Re-checks cache-counter invariants after every access batch."""

    #: Observability handle; the simulator overwrites this with the run's
    #: telemetry so violations land in the event log as well as raising.
    obs = DISABLED

    def __init__(
        self,
        machine: str | None = None,
        program: str | None = None,
        check_inclusion: bool = False,
        inclusion_slack: int = 0,
        structural_every: int = 256,
    ) -> None:
        self.machine = machine
        self.program = program
        self.check_inclusion = check_inclusion
        self.inclusion_slack = inclusion_slack
        self.structural_every = structural_every
        self.batches_checked = 0
        self._previous: dict[str, dict[str, int]] = {}

    # ------------------------------------------------------------------
    def _fail(self, invariant: str, message: str, level: str) -> None:
        if self.obs.enabled:
            # Emit before raising so the violation is in the event log
            # even if the error aborts the run before any export hook.
            self.obs.instant(
                "verify.violation",
                oracle="cache",
                invariant=invariant,
                level=level,
                message=message,
            )
            self.obs.metrics.counter("verify.violations").inc()
        raise VerificationError(
            message,
            machine=self.machine,
            program=self.program,
            oracle="cache",
            invariant=invariant,
            level=level,
        )

    def check_level(self, name: str, cache: ClassifyingCache) -> None:
        """Check every per-level counter invariant for one cache level."""
        stats = cache.stats
        counters = stats.as_dict()
        for key, value in counters.items():
            if value < 0:
                self._fail(
                    "non-negative counters",
                    f"{name} {key} went negative: {value}",
                    name,
                )
        if stats.misses > stats.accesses:
            self._fail(
                "hits + misses == accesses",
                f"{name} misses ({stats.misses}) exceed accesses "
                f"({stats.accesses})",
                name,
            )
        classified = stats.compulsory + stats.capacity + stats.conflict
        if classified != stats.misses:
            self._fail(
                "compulsory + capacity + conflict == misses",
                f"{name} classification sums to {classified}, "
                f"but misses == {stats.misses}",
                name,
            )
        if stats.compulsory != cache.lines_ever_touched:
            self._fail(
                "compulsory == lines ever touched",
                f"{name} counted {stats.compulsory} compulsory misses over "
                f"{cache.lines_ever_touched} distinct lines",
                name,
            )
        if cache.shadow_misses < stats.compulsory + stats.capacity:
            self._fail(
                "shadow misses >= compulsory + capacity",
                f"{name} shadow missed {cache.shadow_misses} times, fewer "
                f"than its classified compulsory + capacity "
                f"({stats.compulsory} + {stats.capacity})",
                name,
            )
        if (
            self.check_inclusion
            and cache.shadow_misses > stats.misses + self.inclusion_slack
        ):
            self._fail(
                "LRU stack inclusion",
                f"fully-associative shadow of {name} missed "
                f"{cache.shadow_misses} times but the set-associative "
                f"cache of equal capacity missed only {stats.misses}",
                name,
            )
        previous = self._previous.get(name)
        if previous is not None:
            for key, value in counters.items():
                if value < previous[key]:
                    self._fail(
                        "monotonic counters",
                        f"{name} {key} decreased from {previous[key]} "
                        f"to {value}",
                        name,
                    )
        self._previous[name] = counters

    def check_structure(self, name: str, cache: ClassifyingCache) -> None:
        """O(cache size) structural audit of the LRU state itself."""
        for violation in cache.real.structural_violations():
            self._fail("set-associative LRU structure", f"{name}: {violation}", name)
        for violation in cache.shadow.structural_violations():
            self._fail("shadow LRU structure", f"{name} shadow: {violation}", name)

    # ------------------------------------------------------------------
    def after_batch(self, hierarchy) -> None:
        """Called by the hierarchy after every simulated access batch."""
        self._fault_point()
        self.batches_checked += 1
        if self.obs.enabled:
            self.obs.metrics.counter("verify.cache_audits").inc()
        self.check_level("L1D", hierarchy.l1d)
        self.check_level("L2", hierarchy.l2)
        if self.structural_every and (
            self.batches_checked % self.structural_every == 0
        ):
            self.check_structure("L1D", hierarchy.l1d)
            self.check_structure("L2", hierarchy.l2)

    def final_check(self, hierarchy) -> None:
        """Full audit at end of run: counters plus structure."""
        self.check_level("L1D", hierarchy.l1d)
        self.check_level("L2", hierarchy.l2)
        self.check_structure("L1D", hierarchy.l1d)
        self.check_structure("L2", hierarchy.l2)

    def _fault_point(self) -> None:
        """The ``verify.oracle`` injection site.

        An armed ``fail``/``fail-hard`` fault is converted into a
        :class:`VerificationError`, modelling an oracle violation, so
        tests can prove the violation-reporting path end to end without
        corrupting real cache state.
        """
        try:
            fault_point(
                "verify.oracle", machine=self.machine, program=self.program
            )
        except FaultInjected as exc:
            raise VerificationError(
                f"injected oracle violation: {exc.message}",
                machine=self.machine,
                program=self.program,
                oracle="cache",
                invariant="injected",
                site="verify.oracle",
            ) from exc
