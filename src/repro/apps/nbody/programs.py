"""Traced N-body programs.

Memory layout: bodies are an array of 80-byte structs (position,
velocity, acceleration, mass — row-major, as the paper's C program);
tree cells live in a per-iteration slab of 128-byte records.  A force
evaluation reads ~6 words of every visited cell (centre of mass, mass,
geometry) plus the body's own record; tree construction touches ~3
words per cell on the insertion path.  Instruction costs are calibrated
so the instruction-to-reference ratio lands near Table 9's 2.1.

The threaded and unthreaded versions compute *identical* numerics: all
accelerations are read from the same tree before any position changes,
so the thread execution order cannot affect the result — only the cache
behaviour.
"""

from __future__ import annotations

import numpy as np

from repro.apps.nbody.config import NbodyConfig
from repro.apps.nbody.tree import BarnesHutTree
from repro.mem.arrays import RefSegment
from repro.mem.layout import Layout
from repro.sim.context import SimContext

BODY_DOUBLES = 10       # pos3, vel3, acc3, mass
BODY_BYTES = BODY_DOUBLES * 8
CELL_BYTES = 128

#: Cost model (instructions) per traced event.
INSTR_PER_VISIT = 13          # opening test + child dispatch
INSTR_PER_INTERACTION = 12    # the softened inverse-square kernel
INSTR_PER_INSERT_STEP = 15    # octant select + count update
INSTR_PER_BODY_UPDATE = 25    # leapfrog integration
REFS_PER_VISIT = 6
REFS_PER_INSERT_STEP = 3


def _initial_positions(cfg: NbodyConfig, rng: np.random.Generator) -> np.ndarray:
    """Initial body positions in the unit cube.

    The default ``clustered`` distribution samples Gaussian blobs around
    random centres — astrophysically sensible and the source of the
    paper's observation that the N-body thread distribution over bins
    "was much less uniform than in the other examples".
    """
    if cfg.distribution == "uniform":
        return rng.random((cfg.bodies, 3))
    centers = rng.random((cfg.clusters, 3)) * 0.8 + 0.1
    which = rng.integers(0, cfg.clusters, size=cfg.bodies)
    positions = centers[which] + 0.06 * rng.standard_normal((cfg.bodies, 3))
    return np.clip(positions, 0.0, 1.0)


class _System:
    """Shared state: body storage, numeric arrays, trace helpers."""

    def __init__(self, ctx: SimContext, cfg: NbodyConfig) -> None:
        self.ctx = ctx
        self.cfg = cfg
        self.bodies = ctx.allocate_array(
            "bodies",
            (cfg.bodies, BODY_DOUBLES),
            element_size=8,
            layout=Layout.ROW_MAJOR,
        )
        rng = np.random.default_rng(cfg.seed)
        self.pos = _initial_positions(cfg, rng)
        self.vel = 0.01 * rng.standard_normal((cfg.bodies, 3))
        self.mass = np.full(cfg.bodies, 1.0 / cfg.bodies)
        self.acc = np.zeros((cfg.bodies, 3))
        self._iteration = 0

    # ------------------------------------------------------------------
    def body_address(self, i: int) -> int:
        return self.bodies.base + i * BODY_BYTES

    def build_tree(self) -> tuple[BarnesHutTree, int]:
        """Build the tree, allocate its slab, and trace construction."""
        tree = BarnesHutTree(self.pos, self.mass, theta=self.cfg.theta)
        slab = self.ctx.space.allocate(
            f"bh_cells_{self._iteration}", tree.cell_count * CELL_BYTES
        )
        self._iteration += 1
        recorder = self.ctx.recorder
        line = recorder.line_of
        base = slab.base
        for i, path in enumerate(tree.insert_paths):
            lines: list[int] = []
            counts: list[int] = []
            for idx in path:
                first = line(base + idx * CELL_BYTES)
                lines.append(first)
                counts.append(REFS_PER_INSERT_STEP)
            # The inserted body's record is read once per insertion.
            lines.append(line(self.body_address(i)))
            counts.append(4)
            recorder.record_lines(lines, counts, writes=len(path))
            recorder.count_instructions(
                INSTR_PER_INSERT_STEP * len(path) + 10
            )
        return tree, base

    def trace_force(self, i: int, visits: list[int], cell_base: int) -> None:
        """Trace one body's tree traversal."""
        recorder = self.ctx.recorder
        line = recorder.line_of
        body_line = line(self.body_address(i))
        lines = [body_line]
        counts = [4]
        half_refs = REFS_PER_VISIT // 2
        for idx in visits:
            address = cell_base + idx * CELL_BYTES
            first = line(address)
            lines.append(first)
            counts.append(half_refs)
            lines.append(line(address + 32))
            counts.append(REFS_PER_VISIT - half_refs)
        # Write the accumulated acceleration back to the body record.
        lines.append(line(self.body_address(i) + 48))
        counts.append(3)
        recorder.record_lines(lines, counts, writes=3)

    def compute_force(self, tree: BarnesHutTree, cell_base: int, i: int) -> None:
        """Numerics + trace + instruction charge for one body's force."""
        visits: list[int] = []
        acc, interactions = tree.acceleration(i, visits)
        self.acc[i] = acc
        self.trace_force(i, visits, cell_base)
        self.ctx.recorder.count_instructions(
            INSTR_PER_VISIT * len(visits)
            + INSTR_PER_INTERACTION * interactions
        )

    def update_positions(self) -> None:
        """Leapfrog step over all bodies, traced in array order."""
        recorder = self.ctx.recorder
        for i in range(self.cfg.bodies):
            recorder.record(
                RefSegment(self.body_address(i), 8, BODY_DOUBLES, 8), writes=6
            )
        recorder.count_instructions(INSTR_PER_BODY_UPDATE * self.cfg.bodies)
        self.vel += self.acc * self.cfg.dt
        self.pos += self.vel * self.cfg.dt

    def result(self) -> dict:
        return {
            "pos": self.pos,
            "vel": self.vel,
            "acc": self.acc,
            "mass": self.mass,
        }


def unthreaded(cfg: NbodyConfig):
    """Bodies processed in array order — spatially random, poor reuse."""

    def program(ctx: SimContext):
        system = _System(ctx, cfg)
        for _ in range(cfg.iterations):
            tree, cell_base = system.build_tree()
            for i in range(cfg.bodies):
                system.compute_force(tree, cell_base, i)
            system.update_positions()
        return system.result()

    program.__name__ = "nbody_unthreaded"
    return program


def threaded(cfg: NbodyConfig):
    """One thread per body per iteration, hinted by spatial position.

    Positions are normalised to the unit cube and scaled to the
    scheduling plane (Section 4.4), so threads in the same scheduling
    block compute bodies that are near each other in space and traverse
    nearly the same tree cells.
    """

    def program(ctx: SimContext):
        system = _System(ctx, cfg)
        block_size = cfg.block_size or ctx.machine.l2.size // 3
        package = ctx.make_thread_package(
            block_size=block_size,
            hash_size=cfg.hash_size,
            policy=cfg.policy,
        )
        span = cfg.bins_per_axis * block_size

        def hint_of(coord: float, lo: float, scale: float) -> int:
            value = int((coord - lo) * scale)
            return 8 + min(max(value, 0), span - 1)

        state: dict = {}

        def force(i: int, _unused) -> None:
            system.compute_force(state["tree"], state["cell_base"], i)

        for _ in range(cfg.iterations):
            state["tree"], state["cell_base"] = system.build_tree()
            lo = system.pos.min(axis=0)
            extent = system.pos.max(axis=0) - lo
            scale = span / np.maximum(extent, 1e-12)
            for i in range(cfg.bodies):
                x, y, z = system.pos[i]
                package.th_fork(
                    force,
                    i,
                    None,
                    hint_of(x, lo[0], scale[0]),
                    hint_of(y, lo[1], scale[1]),
                    hint_of(z, lo[2], scale[2]),
                )
            package.th_run(0)
            system.update_positions()
        result = system.result()
        result["sched"] = package.run_history[-1]
        return result

    program.__name__ = "nbody_threaded"
    return program


VERSIONS = {
    "unthreaded": unthreaded,
    "threaded": threaded,
}
