"""N-body workload configuration."""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import require_positive


@dataclass(frozen=True)
class NbodyConfig:
    """Parameters of one N-body run.

    The paper computes 64,000 bodies for 4 iterations; the default scale
    uses 2,000 bodies on 1/16 caches (N-body working sets — body array
    and tree — are all linear in N, so L1 and L2 scale together; see
    MachineSpec.scaled).

    ``theta`` is the Barnes-Hut opening angle; ``bins_per_axis`` sets how
    the unit cube maps onto the scheduling plane (the paper normalised
    positions "to the dimensions of the scheduling plane"; 4 bins per
    axis yields the ~46 occupied bins of Section 4.4).
    """

    bodies: int = 2000
    iterations: int = 4
    theta: float = 0.8
    dt: float = 0.01
    bins_per_axis: int = 4
    block_size: int = 0
    hash_size: int = 0
    policy: str = "creation"
    seed: int = 1996
    distribution: str = "clustered"
    clusters: int = 8

    def __post_init__(self) -> None:
        require_positive(self.bodies, "bodies")
        require_positive(self.iterations, "iterations")
        require_positive(self.theta, "theta")
        require_positive(self.dt, "dt")
        require_positive(self.bins_per_axis, "bins_per_axis")
        if self.distribution not in ("clustered", "uniform"):
            raise ValueError(
                f"distribution must be 'clustered' or 'uniform', "
                f"got {self.distribution!r}"
            )
        require_positive(self.clusters, "clusters")

    @classmethod
    def paper(cls) -> "NbodyConfig":
        """The paper's full-size workload (64,000 bodies, 4 iterations)."""
        return cls(bodies=64_000, iterations=4)

    @classmethod
    def quick(cls) -> "NbodyConfig":
        """The quick-mode workload, shared by the experiments' --quick
        runs and ``repro-lint`` capture: enough bodies to populate the
        scheduling plane's bins, one iteration (tree build + traversal
        dominate; later iterations repeat the same access pattern)."""
        return cls(bodies=800, iterations=1)
