"""Barnes-Hut N-body simulation (Section 4.4, Tables 8 and 9).

An irregular, dynamic workload: every iteration rebuilds an octree and
computes each body's acceleration by traversing it (the program spends
>88% of its time there), then integrates positions.  No compile-time
reference information exists, so automatic tiling is impossible — the
paper's motivating case for runtime locality scheduling.

* ``unthreaded`` — bodies processed in (spatially random) array order.
* ``threaded`` — one thread per body per iteration, hinted with the
  body's x/y/z position normalised to the scheduling plane: bodies that
  are near each other in space — and therefore traverse nearly the same
  tree nodes — run adjacently.
"""

from repro.apps.nbody.config import NbodyConfig
from repro.apps.nbody.programs import VERSIONS, threaded, unthreaded
from repro.apps.nbody.tree import BarnesHutTree, Cell, direct_accelerations

__all__ = [
    "NbodyConfig",
    "VERSIONS",
    "unthreaded",
    "threaded",
    "BarnesHutTree",
    "Cell",
    "direct_accelerations",
]
