"""A Barnes-Hut octree (Barnes & Hut 1986, the paper's reference [6]).

Bodies are inserted one at a time into an adaptive octree; each internal
cell stores the total mass and centre of mass of its subtree, and a
force evaluation walks the tree opening any cell that subtends more than
the opening angle ``theta``.  The tree reports which cells each
operation touches (``index`` per cell, insertion paths, traversal visit
lists) so traced programs can convert tree walks into address streams.
"""

from __future__ import annotations

import numpy as np

#: Children per cell (octree).
OCTANTS = 8
#: Maximum depth before coincident bodies share a leaf.
MAX_DEPTH = 32
#: Softening length avoiding force singularities between close bodies.
SOFTENING = 1e-3


class Cell:
    """One octree cell: either a leaf (holding body indices) or internal."""

    __slots__ = ("center", "half", "children", "bodies", "count", "com", "mass", "index")

    def __init__(self, center: np.ndarray, half: float, index: int) -> None:
        self.center = center
        self.half = half
        self.children: list[Cell | None] | None = None
        self.bodies: list[int] = []
        self.count = 0
        self.com = np.zeros(3)
        self.mass = 0.0
        self.index = index

    @property
    def is_leaf(self) -> bool:
        return self.children is None

    def octant_of(self, pos: np.ndarray) -> int:
        """Which child octant contains ``pos``."""
        return (
            (1 if pos[0] >= self.center[0] else 0)
            | (2 if pos[1] >= self.center[1] else 0)
            | (4 if pos[2] >= self.center[2] else 0)
        )

    def child_center(self, octant: int) -> np.ndarray:
        offset = self.half / 2.0
        return self.center + offset * np.array(
            [
                1.0 if octant & 1 else -1.0,
                1.0 if octant & 2 else -1.0,
                1.0 if octant & 4 else -1.0,
            ]
        )


class BarnesHutTree:
    """An octree over a set of bodies, rebuilt every simulation step."""

    def __init__(
        self, positions: np.ndarray, masses: np.ndarray, theta: float = 0.8
    ) -> None:
        if positions.ndim != 2 or positions.shape[1] != 3:
            raise ValueError(f"positions must be (N, 3), got {positions.shape}")
        if len(masses) != len(positions):
            raise ValueError("positions and masses must have equal length")
        if theta <= 0:
            raise ValueError(f"theta must be positive, got {theta}")
        self.positions = positions
        self.masses = masses
        self.theta = theta
        self.cells: list[Cell] = []
        lo = positions.min(axis=0)
        hi = positions.max(axis=0)
        center = (lo + hi) / 2.0
        half = float((hi - lo).max()) / 2.0 * 1.0001 + 1e-12
        self.root = self._new_cell(center, half)
        #: Cells touched while inserting each body (for trace generation).
        self.insert_paths: list[list[int]] = []
        for i in range(len(positions)):
            self.insert_paths.append(self._insert(i))
        self._compute_moments(self.root)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _new_cell(self, center: np.ndarray, half: float) -> Cell:
        cell = Cell(np.asarray(center, dtype=float), half, len(self.cells))
        self.cells.append(cell)
        return cell

    def _insert(self, i: int) -> list[int]:
        """Insert body ``i``; return the indices of the cells visited."""
        pos = self.positions[i]
        cell = self.root
        path = []
        depth = 0
        while True:
            path.append(cell.index)
            cell.count += 1
            if cell.is_leaf:
                if cell.count == 1 or depth >= MAX_DEPTH:
                    cell.bodies.append(i)
                    return path
                # Split: push the resident bodies down, then retry here.
                residents = cell.bodies
                cell.bodies = []
                cell.children = [None] * OCTANTS
                for j in residents:
                    self._sink(cell, j, depth)
                # fall through to descend with body i
            octant = cell.octant_of(pos)
            child = cell.children[octant]
            if child is None:
                child = self._new_cell(cell.child_center(octant), cell.half / 2.0)
                cell.children[octant] = child
            cell = child
            depth += 1

    def _sink(self, cell: Cell, j: int, depth: int) -> None:
        """Move body ``j`` into the correct child of a freshly split cell."""
        octant = cell.octant_of(self.positions[j])
        child = cell.children[octant]
        if child is None:
            child = self._new_cell(cell.child_center(octant), cell.half / 2.0)
            cell.children[octant] = child
        # The child inherits the body; counts below ``cell`` are rebuilt
        # by the normal descent, so count the body into the child chain.
        node = child
        d = depth + 1
        while True:
            node.count += 1
            if node.is_leaf:
                if node.count == 1 or d >= MAX_DEPTH:
                    node.bodies.append(j)
                    return
                residents = node.bodies
                node.bodies = []
                node.children = [None] * OCTANTS
                for k in residents:
                    self._sink(node, k, d)
            octant = node.octant_of(self.positions[j])
            nxt = node.children[octant]
            if nxt is None:
                nxt = self._new_cell(node.child_center(octant), node.half / 2.0)
                node.children[octant] = nxt
            node = nxt
            d += 1

    def _compute_moments(self, cell: Cell) -> None:
        if cell.is_leaf:
            if cell.bodies:
                masses = self.masses[cell.bodies]
                cell.mass = float(masses.sum())
                cell.com = (
                    self.positions[cell.bodies] * masses[:, None]
                ).sum(axis=0) / cell.mass
            return
        com = np.zeros(3)
        mass = 0.0
        for child in cell.children:
            if child is None:
                continue
            self._compute_moments(child)
            mass += child.mass
            com += child.com * child.mass
        cell.mass = mass
        if mass > 0:
            cell.com = com / mass

    # ------------------------------------------------------------------
    # Force evaluation
    # ------------------------------------------------------------------
    def acceleration(
        self, i: int, visits: list[int] | None = None
    ) -> tuple[np.ndarray, int]:
        """Acceleration on body ``i`` (G = 1) and the interaction count.

        ``visits``, when given, collects the index of every cell touched
        — the traced programs turn it into the traversal's address
        stream.
        """
        pos = self.positions[i]
        theta_sq = self.theta * self.theta
        acc = np.zeros(3)
        interactions = 0
        stack = [self.root]
        while stack:
            cell = stack.pop()
            if visits is not None:
                visits.append(cell.index)
            if cell.count == 0:
                continue
            if cell.is_leaf:
                for j in cell.bodies:
                    if j == i:
                        continue
                    acc += _pairwise(pos, self.positions[j], self.masses[j])
                    interactions += 1
                continue
            delta = cell.com - pos
            dist_sq = float(delta @ delta)
            width = 2.0 * cell.half
            if width * width < theta_sq * dist_sq:
                acc += _pairwise(pos, cell.com, cell.mass)
                interactions += 1
            else:
                for child in cell.children:
                    if child is not None:
                        stack.append(child)
        return acc, interactions

    @property
    def cell_count(self) -> int:
        return len(self.cells)

    def total_mass(self) -> float:
        return self.root.mass

    def depth(self) -> int:
        """Maximum leaf depth (for tests)."""

        def walk(cell: Cell, d: int) -> int:
            if cell.is_leaf:
                return d
            return max(
                (walk(c, d + 1) for c in cell.children if c is not None),
                default=d,
            )

        return walk(self.root, 0)


def _pairwise(pos: np.ndarray, other: np.ndarray, mass: float) -> np.ndarray:
    delta = other - pos
    dist_sq = float(delta @ delta) + SOFTENING * SOFTENING
    return mass * delta / (dist_sq * np.sqrt(dist_sq))


def direct_accelerations(
    positions: np.ndarray, masses: np.ndarray
) -> np.ndarray:
    """Exact O(N^2) accelerations (softened), the accuracy oracle."""
    delta = positions[None, :, :] - positions[:, None, :]
    dist_sq = (delta ** 2).sum(axis=2) + SOFTENING * SOFTENING
    np.fill_diagonal(dist_sq, np.inf)
    inv = masses[None, :] / (dist_sq * np.sqrt(dist_sq))
    return (delta * inv[:, :, None]).sum(axis=1)
