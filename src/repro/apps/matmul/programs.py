"""Traced matmul programs.

Instruction costs per inner-loop iteration come from the paper's
disassembly (Section 4.2): the SGI compiler's unrolled inner loops cost

* untiled interchanged — 10 instructions per 2 multiply-adds (5/madd:
  2 madds, 4 loads, 2 stores, 1 add, 1 branch);
* KAP-tiled — 18 instructions per 9 madds (2/madd: 9 madds, 6 loads,
  2 adds, 1 branch);
* transposed/threaded — 14 instructions per 4 madds (3.5/madd: 4 madds,
  8 loads, 1 add, 1 branch).

Reference counts follow from the same mixes: 3 per madd untiled
(2 loads + 1 store), 0.75 tiled (register 4x4 blocking), 2 transposed.
"""

from __future__ import annotations

import numpy as np

from repro.apps.matmul.config import MatmulConfig
from repro.mem.arrays import ArrayHandle
from repro.sim.context import SimContext
from repro.trace.blocks import SegmentSweep

#: Instructions per multiply-add, from the paper's inner-loop disassembly.
INSTR_PER_MADD_UNTILED = 5.0
INSTR_PER_MADD_TILED = 2.0
INSTR_PER_MADD_TRANSPOSED = 3.5
#: Loop-header overhead charged per inner-loop entry.
LOOP_OVERHEAD = 8
#: In-place transpose: swap, two loads + two stores + index arithmetic.
INSTR_PER_SWAP = 6


def _allocate(ctx: SimContext, cfg: MatmulConfig):
    """Allocate A, B, C and build the numeric operands."""
    handles = [
        ctx.allocate_array(name, (cfg.n, cfg.n), element_size=cfg.element_size)
        for name in ("A", "B", "C")
    ]
    rng = np.random.default_rng(cfg.seed)
    a = rng.standard_normal((cfg.n, cfg.n))
    b = rng.standard_normal((cfg.n, cfg.n))
    c = np.zeros((cfg.n, cfg.n))
    return handles, a, b, c


def _trace_transpose(ctx: SimContext, array: ArrayHandle, n: int) -> None:
    """Trace an in-place square transpose (swap lower/upper triangles)."""
    recorder = ctx.recorder
    for j in range(1, n):
        col = array.column(j, start=0, count=j)
        row = array.row(j, start=0, count=j)
        # Each swap loads and stores both elements: read pair, write pair.
        recorder.record_interleaved([col, row, col, row], writes=2 * j)
        recorder.count_instructions(INSTR_PER_SWAP * j + LOOP_OVERHEAD)


def interchanged(cfg: MatmulConfig):
    """Untiled loop-interchanged nest: for j, for k, for i."""

    def program(ctx: SimContext):
        (ha, hb, hc), a, b, c = _allocate(ctx, cfg)
        recorder = ctx.recorder
        n = cfg.n
        inner_instr = int(INSTR_PER_MADD_UNTILED * n) + LOOP_OVERHEAD
        for j in range(n):
            c_col = hc.column(j)
            # The whole k loop as one grid: per trip, B[k,j] is
            # loop-invariant in the inner loop (one load), then the inner
            # loop over i loads A[i,k], loads C[i,j] and stores C[i,j].
            recorder.record_grid(
                [
                    [SegmentSweep(hb.element(0, j), step=hb.row_stride)],
                    [
                        SegmentSweep(ha.column(0), step=ha.col_stride),
                        SegmentSweep(c_col),
                        SegmentSweep(c_col),
                    ],
                ],
                outer=n,
                writes=n * n,
            )
            recorder.count_instructions(inner_instr * n)
            c[:, j] = a @ b[:, j]
        return {"C": c, "A": a, "B": b}

    program.__name__ = "matmul_interchanged"
    return program


def transposed(cfg: MatmulConfig):
    """Transpose A in place, then dot products of sequential vectors."""

    def program(ctx: SimContext):
        (ha, hb, hc), a, b, c = _allocate(ctx, cfg)
        recorder = ctx.recorder
        n = cfg.n
        _trace_transpose(ctx, ha, n)
        at = a.T.copy()
        inner_instr = int(INSTR_PER_MADD_TRANSPOSED * n) + LOOP_OVERHEAD
        for i in range(n):
            a_col = ha.column(i)
            # The whole j loop as one grid: each dot product reads two
            # sequential vectors; C[i,j] stays in a register and is
            # stored once when the inner loop finishes.
            recorder.record_grid(
                [
                    [
                        SegmentSweep(a_col),
                        SegmentSweep(hb.column(0), step=hb.col_stride),
                    ],
                    [SegmentSweep(hc.element(i, 0), step=hc.col_stride)],
                ],
                outer=n,
                writes=n,
            )
            recorder.count_instructions(inner_instr * n)
            c[i, :] = at[:, i] @ b
        _trace_transpose(ctx, ha, n)
        return {"C": c, "A": a, "B": b}

    program.__name__ = "matmul_transposed"
    return program


def tiled_interchanged(cfg: MatmulConfig):
    """Cache tiling with a 3x3 (i, j) register block (KAP's output).

    The paper's disassembly of the KAP-tiled inner loop — 18 instructions,
    9 multiply-adds, 6 loads, *no stores* — pins down the structure: a
    3x3 block of C accumulates in registers while the innermost loop runs
    over k, loading A[i..i+2, k] (one line) and B[k, j..j+2] (three
    sequential column walks) each step.  An outer i-tile keeps a panel of
    A rows resident in L2 across the full j sweep.
    """

    def program(ctx: SimContext):
        (ha, hb, hc), a, b, c = _allocate(ctx, cfg)
        recorder = ctx.recorder
        n = cfg.n
        # Square i/k tile: the A tile stays L2-resident across the whole
        # j sweep.  Sized to an eighth of the L2 so it survives imperfect
        # set spreading (column strides alias sets in a physically-indexed
        # L2; compilers of the era picked conservative tile sizes or
        # copied tiles for the same reason).
        import math

        tile = int(math.sqrt(ctx.machine.l2.size / (8 * cfg.element_size)))
        tile = max(3, tile - tile % 3)
        tile = min(tile, n)
        for kk in range(0, n, tile):
            k_hi = min(kk + tile, n)
            k_span = k_hi - kk
            for ii in range(0, n, tile):
                i_hi = min(ii + tile, n)
                for j in range(0, n, 3):
                    j_width = min(3, n - j)
                    for i in range(ii, i_hi, 3):
                        i_width = min(3, i_hi - i)
                        # Reload the C partial sums unless this is the
                        # first k tile (they start at zero in registers).
                        if kk:
                            for d in range(j_width):
                                recorder.record(hc.column(j + d, i, i_width))
                        # Inner k loop over the tile: 3 short A row walks
                        # (adjacent rows share lines) and 3 sequential B
                        # column walks; the 3x3 C block is in registers.
                        a_rows = [ha.row(i + d, kk, k_span) for d in range(i_width)]
                        b_cols = [
                            hb.column(j + d, kk, k_span) for d in range(j_width)
                        ]
                        recorder.record_interleaved(a_rows + b_cols)
                        madds = k_span * i_width * j_width
                        recorder.count_instructions(
                            int(INSTR_PER_MADD_TILED * madds) + LOOP_OVERHEAD
                        )
                        # Store the C block at the k-tile boundary.
                        for d in range(j_width):
                            recorder.record(
                                hc.column(j + d, i, i_width), writes=i_width
                            )
                        c[i : i + i_width, j : j + j_width] += (
                            a[i : i + i_width, kk:k_hi]
                            @ b[kk:k_hi, j : j + j_width]
                        )
        return {"C": c, "A": a, "B": b, "tile": tile}

    program.__name__ = "matmul_tiled_interchanged"
    return program


def tiled_transposed(cfg: MatmulConfig):
    """Cache tiling of the transposed algorithm (2x2 register block).

    Dot-product form over sequential vectors: the inner k loop loads two
    columns of A-transposed and two of B (all contiguous walks) and
    accumulates a 2x2 block of C in registers; a B panel stays
    L2-resident across the i sweep.  Costs sit between the KAP-tiled and
    plain transposed versions, matching the paper's Table 2 ordering.
    """

    def program(ctx: SimContext):
        (ha, hb, hc), a, b, c = _allocate(ctx, cfg)
        recorder = ctx.recorder
        n = cfg.n
        _trace_transpose(ctx, ha, n)
        at = a.T.copy()
        # Panel of B columns sized to half the L2.
        panel = max(2, ctx.machine.l2.size // (2 * cfg.element_size * n))
        panel = min(panel - panel % 2 or 2, n)
        instr_per_madd = INSTR_PER_MADD_TRANSPOSED * 0.7  # 2x2 register reuse
        for jj in range(0, n, panel):
            j_hi = min(jj + panel, n)
            for i in range(0, n, 2):
                i_width = min(2, n - i)
                a_cols = [ha.column(i + d) for d in range(i_width)]
                for j in range(jj, j_hi, 2):
                    j_width = min(2, j_hi - j)
                    b_cols = [hb.column(j + d) for d in range(j_width)]
                    recorder.record_interleaved(a_cols + b_cols)
                    for di in range(i_width):
                        for dj in range(j_width):
                            recorder.record(hc.element(i + di, j + dj), writes=1)
                            c[i + di, j + dj] = at[:, i + di] @ b[:, j + dj]
                    madds = n * i_width * j_width
                    recorder.count_instructions(
                        int(instr_per_madd * madds) + LOOP_OVERHEAD
                    )
        _trace_transpose(ctx, ha, n)
        return {"C": c, "A": a, "B": b, "panel": panel}

    program.__name__ = "matmul_tiled_transposed"
    return program


def threaded(cfg: MatmulConfig):
    """One thread per dot product, hinted with the two column addresses.

    This is the paper's Section 2.1/4.2 program: transpose A, then
    ``th_fork(DotProduct, i, j, A[1,i], B[1,j])`` for every (i, j), then
    ``th_run(0)``.
    """

    def program(ctx: SimContext):
        (ha, hb, hc), a, b, c = _allocate(ctx, cfg)
        recorder = ctx.recorder
        n = cfg.n
        _trace_transpose(ctx, ha, n)
        at = a.T.copy()
        package = ctx.make_thread_package(
            block_size=cfg.block_size,
            hash_size=cfg.hash_size,
            fold_symmetric=cfg.fold_symmetric,
            policy=cfg.policy,
        )
        inner_instr = int(INSTR_PER_MADD_TRANSPOSED * n)

        def dot_product(i: int, j: int) -> None:
            recorder.record_interleaved([ha.column(i), hb.column(j)])
            recorder.record(hc.element(i, j), writes=1)
            recorder.count_instructions(inner_instr)
            c[i, j] = at[:, i] @ b[:, j]

        for i in range(n):
            for j in range(n):
                package.th_fork(
                    dot_product, i, j, ha.column_base(i), hb.column_base(j)
                )
        sched = package.th_run(0)
        _trace_transpose(ctx, ha, n)
        return {"C": c, "A": a, "B": b, "sched": sched}

    program.__name__ = "matmul_threaded"
    return program


VERSIONS = {
    "interchanged": interchanged,
    "transposed": transposed,
    "tiled_interchanged": tiled_interchanged,
    "tiled_transposed": tiled_transposed,
    "threaded": threaded,
}
