"""Matrix-multiply workload configuration."""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import require_positive


@dataclass(frozen=True)
class MatmulConfig:
    """Parameters of one matmul run.

    The paper uses n = 1024 on full-size machines; the default
    experiment scale uses n = 128 on 1/64 caches, preserving the
    matrix-to-cache ratio (see DESIGN.md).

    ``block_size``/``hash_size`` configure the threaded version's
    scheduler (0 = the package defaults: half the L2 for the block
    dimension).  ``seed`` makes the numeric inputs reproducible.
    """

    n: int = 128
    element_size: int = 8
    block_size: int = 0
    hash_size: int = 0
    fold_symmetric: bool = False
    policy: str = "creation"
    seed: int = 1996

    def __post_init__(self) -> None:
        require_positive(self.n, "n")
        require_positive(self.element_size, "element_size")

    @property
    def matrix_bytes(self) -> int:
        return self.n * self.n * self.element_size

    @classmethod
    def paper(cls) -> "MatmulConfig":
        """The paper's full-size workload (n = 1024, for unscaled
        machines; expect hours of simulation)."""
        return cls(n=1024)

    @classmethod
    def quick(cls) -> "MatmulConfig":
        """The quick-mode workload, shared by the experiments' --quick
        runs and ``repro-lint`` capture: matrices stay comfortably
        larger than the scaled L2 (2.25x), so the capacity-miss story —
        and the hint/bin geometry the lint inspects — survive at ~40%
        of the full simulation cost."""
        return cls(n=96)
