"""Matrix multiplication, C = A x B (Section 4.2).

Five versions, matching the paper's Table 2 rows:

* ``interchanged`` — loop-interchanged untiled nest (j, k, i), B[k,j] in
  a register.
* ``transposed`` — A transposed in place before/after so the dot product
  reads two sequential vectors; C[i,j] in a register.
* ``tiled_interchanged`` — i/k cache tiling plus 4x4 register blocking
  (what KAP/SGI compilers produce for the interchanged nest).
* ``tiled_transposed`` — cache tiling of the transposed algorithm.
* ``threaded`` — one fine-grained thread per dot product, scheduled by
  hint addresses (the columns of A-transposed and B).
"""

from repro.apps.matmul.config import MatmulConfig
from repro.apps.matmul.programs import (
    VERSIONS,
    interchanged,
    threaded,
    tiled_interchanged,
    tiled_transposed,
    transposed,
)

__all__ = [
    "MatmulConfig",
    "VERSIONS",
    "interchanged",
    "transposed",
    "tiled_interchanged",
    "tiled_transposed",
    "threaded",
]
