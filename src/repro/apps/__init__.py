"""The paper's four applications, as traced programs.

Each application package exposes a ``VERSIONS`` registry mapping the
paper's version names (e.g. ``"interchanged"``, ``"threaded"``) to
factories ``make(config) -> TracedProgram``.  Every version performs its
real numeric computation (so versions can be checked against each other)
while emitting the memory-reference trace of the paper's loop structure.
"""

from repro.apps import matmul, nbody, pde, sor

__all__ = ["matmul", "pde", "sor", "nbody"]
