"""The paper's four applications, as traced programs.

Each application package exposes a ``VERSIONS`` registry mapping the
paper's version names (e.g. ``"interchanged"``, ``"threaded"``) to
factories ``make(config) -> TracedProgram``.  Every version performs its
real numeric computation (so versions can be checked against each other)
while emitting the memory-reference trace of the paper's loop structure.
"""

from repro.apps import matmul, nbody, pde, sor

#: The versions of each application that drive a thread package —
#: what ``repro-lint <app>[:<version>]`` captures, built at each app's
#: quick-mode scale (``Config.quick()``).  The non-threaded versions
#: (``untiled``, ``interchanged``, ...) have no hints or bins to lint;
#: ``threaded_blocking`` constructs its package outside the context
#: factories and is likewise not capturable.
LINT_PROGRAMS = {
    "matmul": {"threaded": lambda: matmul.threaded(matmul.MatmulConfig.quick())},
    "pde": {"threaded": lambda: pde.threaded(pde.PdeConfig.quick())},
    "sor": {
        "threaded": lambda: sor.threaded(sor.SorConfig.quick()),
        "threaded_exact": lambda: sor.threaded_exact(sor.SorConfig.quick()),
    },
    "nbody": {"threaded": lambda: nbody.threaded(nbody.NbodyConfig.quick())},
}

__all__ = ["matmul", "pde", "sor", "nbody", "LINT_PROGRAMS"]
