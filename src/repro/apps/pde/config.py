"""PDE workload configuration."""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import require_positive


@dataclass(frozen=True)
class PdeConfig:
    """Parameters of one PDE run.

    ``n`` is the interior grid edge (the paper's "problem size of 2049";
    the default scale uses 257).  ``iterations`` defaults to the paper's
    5 ("motivated by what people routinely use in multigrid solvers").
    """

    n: int = 257
    iterations: int = 5
    element_size: int = 8
    block_size: int = 0
    hash_size: int = 0
    policy: str = "creation"
    seed: int = 1996

    def __post_init__(self) -> None:
        require_positive(self.n, "n")
        require_positive(self.iterations, "iterations")

    @property
    def padded(self) -> int:
        """Grid edge including the fixed boundary."""
        return self.n + 2

    @property
    def grid_bytes(self) -> int:
        return self.padded * self.padded * self.element_size

    @classmethod
    def paper(cls) -> "PdeConfig":
        """The paper's full-size workload (size 2049, 5 iterations)."""
        return cls(n=2049, iterations=5)

    @classmethod
    def quick(cls) -> "PdeConfig":
        """The quick-mode workload, shared by the experiments' --quick
        runs and ``repro-lint`` capture: the grid still crosses the
        scaled cache, so the red-black traversal-order story is
        preserved with fewer sweeps."""
        return cls(n=129, iterations=3)
