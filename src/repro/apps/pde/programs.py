"""Traced PDE programs (red-black Gauss-Seidel + residual).

The paper's kernel solves Laplace's equation on a rectangle with a
uniform mesh: ``iters`` red-black relaxation sweeps followed by one
residual computation.  We use the standard sign convention
``u = (b + u_N + u_S + u_E + u_W) / 4`` (the paper's pseudo-code negates
the neighbours, which is the same iteration under the substitution
``u -> (-1)^(i+j) u`` and produces an identical reference trace).

Instruction costs are calibrated to Table 5's totals: ~12 instructions
per relaxed point for the regular version, ~11 for the fused
cache-conscious/threaded bodies (the 277M/303M I-fetch ratio), and ~14
per residual point.
"""

from __future__ import annotations

import numpy as np

from repro.apps.pde.config import PdeConfig
from repro.mem.arrays import ArrayHandle
from repro.sim.context import SimContext

RED = 0
BLACK = 1

INSTR_PER_RELAX_POINT = 12
INSTR_PER_FUSED_POINT = 11
INSTR_PER_RESIDUAL_POINT = 14
LOOP_OVERHEAD = 8


class _Grid:
    """Shared state of one PDE run: handles, numeric arrays, tracing."""

    def __init__(self, ctx: SimContext, cfg: PdeConfig, fused: bool) -> None:
        p = cfg.padded
        self.n = cfg.n
        self.ctx = ctx
        self.hu = ctx.allocate_array("u", (p, p), element_size=cfg.element_size)
        self.hb = ctx.allocate_array("b", (p, p), element_size=cfg.element_size)
        self.hr = ctx.allocate_array("r", (p, p), element_size=cfg.element_size)
        rng = np.random.default_rng(cfg.seed)
        self.u = np.zeros((p, p))
        self.b = rng.standard_normal((p, p))
        self.b[0, :] = self.b[-1, :] = self.b[:, 0] = self.b[:, -1] = 0.0
        self.r = np.zeros((p, p))
        self.relax_instr = (
            INSTR_PER_FUSED_POINT if fused else INSTR_PER_RELAX_POINT
        )

    # ------------------------------------------------------------------
    # One column of a red-black relaxation pass
    # ------------------------------------------------------------------
    def _color_start(self, j: int, color: int) -> int:
        """First interior row index of ``color`` in column ``j``.

        Red points have even coordinate sum; interior rows are 1..n.
        """
        return 1 if (1 + j) % 2 == color else 2

    def relax_column(self, j: int, color: int) -> None:
        """Relax the ``color`` points of interior column ``j``."""
        n = self.n
        s = self._color_start(j, color)
        count = (n - s) // 2 + 1
        recorder = self.ctx.recorder
        # Per point: load b, the four neighbours, store u — six references.
        recorder.record_interleaved(
            [
                self.hb.column(j, s, count, 2),
                self.hu.column(j - 1, s, count, 2),
                self.hu.column(j + 1, s, count, 2),
                self.hu.column(j, s - 1, count, 2),
                self.hu.column(j, s + 1, count, 2),
                self.hu.column(j, s, count, 2),
            ],
            writes=count,
        )
        recorder.count_instructions(self.relax_instr * count + LOOP_OVERHEAD)
        u, b = self.u, self.b
        rows = slice(s, n + 1, 2)
        up = slice(s - 1, n, 2)
        down = slice(s + 1, n + 2, 2)
        u[rows, j] = 0.25 * (
            b[rows, j] + u[up, j] + u[down, j] + u[rows, j - 1] + u[rows, j + 1]
        )

    def residual_column(self, j: int) -> None:
        """Compute the residual of interior column ``j``."""
        n = self.n
        recorder = self.ctx.recorder
        # Per point: load b, three u columns (centre column read twice for
        # the i+-1 terms), store r — seven references, as in Table 5.
        centre = self.hu.column(j, 1, n)
        recorder.record_interleaved(
            [
                self.hb.column(j, 1, n),
                self.hu.column(j - 1, 1, n),
                self.hu.column(j + 1, 1, n),
                centre,
                centre,
                centre,
                self.hr.column(j, 1, n),
            ],
            writes=n,
        )
        recorder.count_instructions(INSTR_PER_RESIDUAL_POINT * n + LOOP_OVERHEAD)
        u, b, r = self.u, self.b, self.r
        rows = slice(1, n + 1)
        r[rows, j] = (
            b[rows, j]
            + u[0:n, j]
            + u[2 : n + 2, j]
            + u[rows, j - 1]
            + u[rows, j + 1]
            - 4.0 * u[rows, j]
        )

    def result(self) -> dict:
        return {"u": self.u, "r": self.r, "b": self.b}


def regular(cfg: PdeConfig):
    """Full red pass, full black pass, per iteration; residual at the end."""

    def program(ctx: SimContext):
        grid = _Grid(ctx, cfg, fused=False)
        n = cfg.n
        for _ in range(cfg.iterations):
            for color in (RED, BLACK):
                for j in range(1, n + 1):
                    grid.relax_column(j, color)
        for j in range(1, n + 1):
            grid.residual_column(j)
        return grid.result()

    program.__name__ = "pde_regular"
    return program


def _fused_unit(grid: _Grid, j: int, last: bool) -> None:
    """The fused work unit: red on line j, black on line j-1, and (during
    the final iteration) the residual of line j-2, whose neighbours are
    then final.  Exactly Douglas's cache-conscious ordering."""
    n = grid.n
    if j <= n:
        grid.relax_column(j, RED)
    if 1 <= j - 1 <= n:
        grid.relax_column(j - 1, BLACK)
    if last and 1 <= j - 2 <= n:
        grid.residual_column(j - 2)


def cache_conscious(cfg: PdeConfig):
    """Douglas's fused ordering: one pass over the data per iteration."""

    def program(ctx: SimContext):
        grid = _Grid(ctx, cfg, fused=True)
        n = cfg.n
        for it in range(cfg.iterations):
            last = it == cfg.iterations - 1
            for j in range(1, n + 4):
                _fused_unit(grid, j, last)
        return grid.result()

    program.__name__ = "pde_cache_conscious"
    return program


def threaded(cfg: PdeConfig):
    """One thread per fused line pair, ny+1 threads per iteration.

    Hints are the column base addresses of u and b for the thread's line
    — two-dimensional scheduling, one th_run per iteration (the sweeps
    are ordered, so threads cannot cross iterations).
    """

    def program(ctx: SimContext):
        grid = _Grid(ctx, cfg, fused=True)
        n = cfg.n
        package = ctx.make_thread_package(
            block_size=cfg.block_size,
            hash_size=cfg.hash_size,
            policy=cfg.policy,
        )

        def work(j: int, last: int) -> None:
            _fused_unit(grid, j, bool(last))

        for it in range(cfg.iterations):
            last = 1 if it == cfg.iterations - 1 else 0
            for j in range(1, n + 4):
                hint_col = min(j, n + 1)
                package.th_fork(
                    work,
                    j,
                    last,
                    grid.hu.column_base(hint_col),
                    grid.hb.column_base(hint_col),
                )
            package.th_run(0)
        result = grid.result()
        result["sched"] = package.run_history[-1]
        return result

    program.__name__ = "pde_threaded"
    return program


VERSIONS = {
    "regular": regular,
    "cache_conscious": cache_conscious,
    "threaded": threaded,
}
