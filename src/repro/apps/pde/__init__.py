"""Red-black Gauss-Seidel PDE relaxation (Section 4.3, Tables 4 and 5).

One smoothing step of a multigrid Poisson solver: ``iters`` red-black
relaxation sweeps over a uniform mesh followed by one residual
computation.  Three versions:

* ``regular`` — full red pass, full black pass, per iteration; residual
  afterwards.  Data crosses the cache 2*iters + 1 times.
* ``cache_conscious`` — Douglas's fused ordering: red on line i3 followed
  immediately by black on line i3-1, residual folded into the last
  sweep.  Data crosses the cache iters times.
* ``threaded`` — the fused (red i3, black i3-1) line pair becomes a
  thread (ny+1 threads per iteration), scheduled by the line's column
  addresses.

``regular`` and ``cache_conscious`` are numerically identical (the fused
ordering respects every red-black dependence); the threaded version can
be reordered by the scheduler and is validated by convergence instead.
"""

from repro.apps.pde.config import PdeConfig
from repro.apps.pde.programs import VERSIONS, cache_conscious, regular, threaded

__all__ = ["PdeConfig", "VERSIONS", "regular", "cache_conscious", "threaded"]
