"""Successive over-relaxation kernel (Section 4.3, Tables 6 and 7).

The compiler-community SOR nest: ``t`` in-place sweeps of a five-point
stencil over an n x n array, Fortran column-major.  Three versions:

* ``untiled`` — the paper's literal loop nest, whose inner loop walks a
  *row* of the column-major array (the bad, stride-n direction).
* ``hand_tiled`` — time-skewed column tiling (Lam/Rothberg/Wolf): a tile
  of columns is carried through all t sweeps before moving on, with the
  skew preserving every Gauss-Seidel dependence, so the result is
  bit-identical to the untiled version.
* ``threaded`` — one thread per (sweep, column), all t*(n-1) threads
  forked up front with the column's address span as hints, then a single
  ``th_run``: the scheduler groups the same columns across sweeps into a
  bin, achieving the tiled version's locality as chaotic relaxation
  ("the algorithm works fine because the goal is to reach convergence").
"""

from repro.apps.sor.config import SorConfig
from repro.apps.sor.kernels import sor_column_update, sor_reference
from repro.apps.sor.programs import (
    EXTENSION_VERSIONS,
    VERSIONS,
    hand_tiled,
    threaded,
    threaded_exact,
    untiled,
)

__all__ = [
    "SorConfig",
    "sor_column_update",
    "sor_reference",
    "VERSIONS",
    "EXTENSION_VERSIONS",
    "untiled",
    "hand_tiled",
    "threaded",
    "threaded_exact",
]
