"""SOR workload configuration."""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import require_positive


@dataclass(frozen=True)
class SorConfig:
    """Parameters of one SOR run.

    The paper uses n = 2005, t = 30, tile width s = 18; the default
    scale uses n = 251 (matrix/L2 ratio preserved) with t = 30.
    ``tile`` = 0 picks a width whose column tile fits half the L2.
    """

    n: int = 251
    iterations: int = 30
    tile: int = 0
    element_size: int = 8
    block_size: int = 0
    hash_size: int = 0
    policy: str = "creation"
    seed: int = 1996

    def __post_init__(self) -> None:
        require_positive(self.n, "n")
        require_positive(self.iterations, "iterations")
        if self.n < 3:
            raise ValueError("n must be at least 3 (interior points needed)")

    @property
    def matrix_bytes(self) -> int:
        return self.n * self.n * self.element_size

    @classmethod
    def paper(cls) -> "SorConfig":
        """The paper's full-size workload (n = 2005, t = 30, s = 18)."""
        return cls(n=2005, iterations=30, tile=18)

    @classmethod
    def quick(cls) -> "SorConfig":
        """The quick-mode workload, shared by the experiments' --quick
        runs and ``repro-lint`` capture: the matrix still spans several
        scheduler blocks, so tiling/binning behaviour is preserved at a
        fraction of the sweep cost."""
        return cls(n=127, iterations=10)
