"""Traced SOR programs.

Instruction costs are calibrated to Table 7's totals: the untiled and
threaded versions execute ~10 instructions per point update (1,206M /
120.5M updates) and the hand-tiled version ~16 (its 1,917M I-fetches
reflect the skewed loop bounds and boundary handling).  References per
update are 4 in all versions: the compiler keeps the three-point window
along the walk direction in registers, so each update loads one new
centre-walk element plus the two cross neighbours and stores the result.
"""

from __future__ import annotations

import numpy as np

from repro.apps.sor.config import SorConfig
from repro.apps.sor.kernels import sor_column_update
from repro.sim.context import SimContext

INSTR_PER_UPDATE = 10
INSTR_PER_TILED_UPDATE = 16
LOOP_OVERHEAD = 8


def _allocate(ctx: SimContext, cfg: SorConfig):
    handle = ctx.allocate_array("A", (cfg.n, cfg.n), element_size=cfg.element_size)
    rng = np.random.default_rng(cfg.seed)
    a = rng.standard_normal((cfg.n, cfg.n))
    return handle, a


def untiled(cfg: SorConfig):
    """The paper's literal nest: outer i2 (rows), inner i3 (columns).

    With column-major storage the inner loop strides by a whole column,
    so the three-point window slides along a *row*: per update one new
    row-walk load, the up/down column neighbours, and the store.
    """

    def program(ctx: SimContext):
        handle, a = _allocate(ctx, cfg)
        recorder = ctx.recorder
        n = cfg.n
        interior = n - 2
        for _ in range(cfg.iterations):
            for i in range(1, n - 1):
                recorder.record_interleaved(
                    [
                        handle.row(i, 2, interior),      # A[i, j+1] (new window elem)
                        handle.row(i - 1, 1, interior),  # A[i-1, j]
                        handle.row(i + 1, 1, interior),  # A[i+1, j]
                        handle.row(i, 1, interior),      # store A[i, j]
                    ],
                    writes=interior,
                )
                recorder.count_instructions(
                    INSTR_PER_UPDATE * interior + LOOP_OVERHEAD
                )
            # Numerics: column order is dependence-equivalent to the row
            # order being traced (see kernels.py), and far faster.
            for j in range(1, n - 1):
                sor_column_update(a, j)
        return {"A": a}

    program.__name__ = "sor_untiled"
    return program


def _trace_column_update(recorder, handle, j: int, n: int, instr: int) -> None:
    """Trace one column update (the good, contiguous walk direction)."""
    interior = n - 2
    recorder.record_interleaved(
        [
            handle.column(j, 2, interior),      # A[i+1, j] (new window elem)
            handle.column(j - 1, 1, interior),  # A[i, j-1]
            handle.column(j + 1, 1, interior),  # A[i, j+1]
            handle.column(j, 1, interior),      # store A[i, j]
        ],
        writes=interior,
    )
    recorder.count_instructions(instr * interior + LOOP_OVERHEAD)


def default_tile(l2_size: int, n: int, element_size: int) -> int:
    """Tile width whose three-column working band fits half the L2."""
    width = l2_size // (2 * 3 * n * element_size)
    return max(2, min(width, n - 2))


def hand_tiled(cfg: SorConfig):
    """Time-skewed column tiling (the paper's hand-tiled version [29]).

    Tile m executes, for each sweep tau, the columns j with
    ``m*s <= j + tau < (m+1)*s``: the skew keeps every left/up-new,
    right/down-old dependence, so the result equals the untiled nest
    bit for bit while each column tile stays cache-resident through
    all t sweeps.
    """

    def program(ctx: SimContext):
        handle, a = _allocate(ctx, cfg)
        recorder = ctx.recorder
        n = cfg.n
        t = cfg.iterations
        s = cfg.tile or default_tile(ctx.machine.l2.size, n, cfg.element_size)
        # Skewed tile index range: j + tau spans [1, n-2+t).
        first_tile = 1 // s
        last_tile = (n - 3 + t) // s
        for m in range(first_tile, last_tile + 1):
            for tau in range(t):
                lo = max(1, m * s - tau)
                hi = min(n - 2, (m + 1) * s - 1 - tau)
                for j in range(lo, hi + 1):
                    _trace_column_update(
                        recorder, handle, j, n, INSTR_PER_TILED_UPDATE
                    )
                    sor_column_update(a, j)
        return {"A": a, "tile": s}

    program.__name__ = "sor_hand_tiled"
    return program


def threaded(cfg: SorConfig):
    """One thread per (sweep, column); all forked, then one ``th_run``.

    Hints are the paper's: the addresses of the first element of the
    left neighbour column and the last element of the right neighbour
    column — the span of data the thread touches.  Binning groups the
    same columns across *all* sweeps, so each column band is loaded
    once and relaxed t times while resident (chaotic relaxation).
    """

    def program(ctx: SimContext):
        handle, a = _allocate(ctx, cfg)
        recorder = ctx.recorder
        n = cfg.n
        package = ctx.make_thread_package(
            block_size=cfg.block_size,
            hash_size=cfg.hash_size,
            policy=cfg.policy,
        )

        def compute(j: int, _unused) -> None:
            _trace_column_update(recorder, handle, j, n, INSTR_PER_UPDATE)
            sor_column_update(a, j)

        for _ in range(cfg.iterations):
            for j in range(1, n - 1):
                package.th_fork(
                    compute,
                    j,
                    0,
                    handle.addr(0, j - 1),
                    handle.addr(n - 1, j + 1),
                )
        sched = package.th_run(0)
        return {"A": a, "sched": sched}

    program.__name__ = "sor_threaded"
    return program


def threaded_exact(cfg: SorConfig):
    """Dependence-aware threading (the Section 6 extension, demonstrated).

    Same threads as :func:`threaded`, but each thread (tau, j) declares
    its predecessors — (tau, j-1), (tau-1, j), (tau-1, j+1) — and runs
    under :class:`~repro.core.deps.DependentThreadPackage`, so the
    schedule is a legal Gauss-Seidel order and the result is
    bit-identical to the untiled nest (no chaotic relaxation).

    The hint is the *skewed* coordinate: thread (tau, j) is hinted at
    column j + tau.  With static column hints, the left-neighbour
    dependence forces neighbouring bins to ping-pong one wavefront at a
    time; hinting the anti-diagonal — exactly the direction time-skewed
    tiling iterates — makes every bin drainable in a single activation,
    with a sliding window of ~one block of columns resident while it
    drains.  (Hints need not be real addresses; the paper's N-body
    version already uses synthetic coordinates.)
    """

    def program(ctx: SimContext):
        handle, a = _allocate(ctx, cfg)
        recorder = ctx.recorder
        n = cfg.n
        package = ctx.make_dependent_thread_package(
            block_size=cfg.block_size,
            hash_size=cfg.hash_size,
            policy=cfg.policy,
        )

        def compute(j: int, _unused) -> None:
            _trace_column_update(recorder, handle, j, n, INSTR_PER_UPDATE)
            sor_column_update(a, j)

        columns = n - 2
        column_stride = handle.col_stride
        thread_ids: list[int] = []
        for tau in range(cfg.iterations):
            for j in range(1, n - 1):
                after = []
                if j > 1:
                    after.append(thread_ids[tau * columns + (j - 2)])
                if tau > 0:
                    after.append(thread_ids[(tau - 1) * columns + (j - 1)])
                    if j + 1 <= n - 2:
                        after.append(thread_ids[(tau - 1) * columns + j])
                thread_ids.append(
                    package.th_fork(
                        compute,
                        j,
                        0,
                        handle.base + (j + tau) * column_stride,
                        0,
                        after=after,
                    )
                )
        sched = package.th_run(0)
        return {"A": a, "sched": sched, "activations": package.last_activations}

    program.__name__ = "sor_threaded_exact"
    return program


def threaded_blocking(cfg: SorConfig):
    """General-purpose synchronising threads (the Section 7 question).

    One long-lived generator thread per column performs *all* t sweeps,
    blocking on events until its neighbours reach the right sweep —
    classic condition synchronisation instead of fork-per-sweep.  The
    result is bit-exact Gauss-Seidel.  The costs the paper worried about
    become measurable: every neighbour wait that parks is a context
    switch, and because a thread is pinned to its column for all sweeps
    its hint cannot be skewed, so neighbouring bins ping-pong along the
    wavefront (compare ``threaded_exact``, where run-to-completion
    threads allow one hint per (sweep, column) unit).
    """

    def program(ctx: SimContext):
        from repro.core.blocking import BlockingThreadPackage

        handle, a = _allocate(ctx, cfg)
        recorder = ctx.recorder
        n = cfg.n
        t = cfg.iterations
        package = BlockingThreadPackage(
            l2_size=ctx.machine.l2.size,
            block_size=cfg.block_size,
            hash_size=cfg.hash_size,
            policy=cfg.policy,
            recorder=recorder,
            address_space=ctx.space,
        )
        ctx.packages.append(package)
        done = [
            [package.event() for _ in range(n)] for _ in range(t)
        ]

        def column_thread(j: int, _unused):
            for tau in range(t):
                if j > 1:
                    yield done[tau][j - 1]
                if tau > 0 and j + 1 <= n - 2:
                    yield done[tau - 1][j + 1]
                _trace_column_update(recorder, handle, j, n, INSTR_PER_UPDATE)
                sor_column_update(a, j)
                done[tau][j].set()

        for j in range(1, n - 1):
            package.th_fork(
                column_thread,
                j,
                0,
                handle.addr(0, j - 1),
                handle.addr(n - 1, j + 1),
            )
        sched = package.th_run(0)
        return {
            "A": a,
            "sched": sched,
            "context_switches": package.context_switches,
            "activations": package.last_activations,
        }

    program.__name__ = "sor_threaded_blocking"
    return program


VERSIONS = {
    "untiled": untiled,
    "hand_tiled": hand_tiled,
    "threaded": threaded,
}

#: Extension versions, not part of the paper's Table 6/7 rows.
EXTENSION_VERSIONS = {
    "threaded_exact": threaded_exact,
    "threaded_blocking": threaded_blocking,
}
