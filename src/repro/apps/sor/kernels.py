"""Numeric SOR kernels.

The update ``A[i,j] = 0.2 * (A[i,j] + A[i+1,j] + A[i-1,j] + A[i,j+1] +
A[i,j-1])`` is a Gauss-Seidel sweep whose "new" inputs are always the
left and upper neighbours and whose "old" inputs the right and lower
ones — for *any* execution order that respects those dependences (row
order, column order, skewed tiles), every point sees identical inputs,
so all legal orders produce bit-identical results.  We exploit that by
updating a column at a time: within a column the recurrence
``y[i] = x[i] + 0.2 * y[i-1]`` is a linear filter, solved exactly with
``scipy.signal.lfilter``.
"""

from __future__ import annotations

import numpy as np
from scipy.signal import lfilter


def sor_column_update(a: np.ndarray, j: int) -> None:
    """In-place SOR update of interior column ``j`` of ``a``.

    Equivalent to the scalar loop
    ``for i in 1..n-2: a[i,j] = 0.2*(a[i,j]+a[i+1,j]+a[i-1,j]+a[i,j+1]+a[i,j-1])``
    (note ``a[i-1,j]`` and ``a[i,j-1]`` are already-updated values).
    """
    x = 0.2 * (a[1:-1, j] + a[2:, j] + a[1:-1, j + 1] + a[1:-1, j - 1])
    # y[i] = x[i] + 0.2 * y[i-1], seeded by the (fixed) boundary row.
    y, _ = lfilter([1.0], [1.0, -0.2], x, zi=np.array([0.2 * a[0, j]]))
    a[1:-1, j] = y


def sor_column_update_scalar(a: np.ndarray, j: int) -> None:
    """Literal scalar version of :func:`sor_column_update` (test oracle)."""
    for i in range(1, a.shape[0] - 1):
        a[i, j] = 0.2 * (
            a[i, j] + a[i + 1, j] + a[i - 1, j] + a[i, j + 1] + a[i, j - 1]
        )


def sor_reference(a: np.ndarray, iterations: int) -> np.ndarray:
    """The paper's literal row-order nest, as a ground-truth oracle."""
    out = a.copy()
    n = out.shape[0]
    for _ in range(iterations):
        for i in range(1, n - 1):
            for j in range(1, n - 1):
                out[i, j] = 0.2 * (
                    out[i, j]
                    + out[i + 1, j]
                    + out[i - 1, j]
                    + out[i, j + 1]
                    + out[i, j - 1]
                )
    return out
