"""Table 9: N-body cache simulation (one iteration, R8000)."""

from repro.exp import table9_nbody_cache


def test_table9_report(report, benchmark):
    result = benchmark.pedantic(
        table9_nbody_cache.run, kwargs={"quick": False}, rounds=1, iterations=1
    )
    report(result)
