"""Table 6: SOR performance (3 versions x 2 machines)."""

from repro.exp import table6_sor_perf


def test_table6_report(report, benchmark):
    result = benchmark.pedantic(
        table6_sor_perf.run, kwargs={"quick": False}, rounds=1, iterations=1
    )
    report(result)
