"""Ablations of the scheduler's design choices (DESIGN.md section 5).

Each ablation reruns the threaded matrix multiply with one knob changed
and reports the L2 miss impact, quantifying the paper's design
decisions: symmetric folding (Section 2.3's 50% bin reduction), bin
traversal order, hash-table size (collision chaining), and thread-group
capacity (record-management amortisation).
"""

from dataclasses import replace

import pytest

from repro.apps.matmul import MatmulConfig
from repro.apps.matmul import threaded as matmul_threaded
from repro.machine.presets import r8000
from repro.sim.engine import Simulator
from repro.trace.costmodel import ThreadCostModel

CFG = MatmulConfig(n=96)


def run_threaded(cfg, **package_overrides):
    simulator = Simulator(r8000(64))
    if package_overrides:
        base = matmul_threaded(cfg)

        def program(ctx):
            original = ctx.make_thread_package

            def patched(**kwargs):
                kwargs.update(package_overrides)
                return original(**kwargs)

            ctx.make_thread_package = patched
            return base(ctx)

        program.__name__ = "matmul_threaded_ablated"
        return simulator.run(program)
    return simulator.run(matmul_threaded(cfg))


def gram_program(cfg, fold):
    """Threaded Gram matrix C = A^T A: thread (i, j) dots columns i and j
    of the SAME array, so (h_i, h_j) and (h_j, h_i) genuinely both occur
    — the situation Section 2.3's symmetric folding targets.  (Matmul's
    hints come from two different matrices, so folding is a no-op there.)
    """
    import numpy as np

    def program(ctx):
        n = cfg.n
        ha = ctx.allocate_array("A", (n, n))
        hc = ctx.allocate_array("C", (n, n))
        rng = np.random.default_rng(cfg.seed)
        a = rng.standard_normal((n, n))
        c = np.zeros((n, n))
        recorder = ctx.recorder
        package = ctx.make_thread_package(fold_symmetric=fold)

        def dot(i, j):
            recorder.record_interleaved([ha.column(i), ha.column(j)])
            recorder.record(hc.element(i, j), writes=1)
            recorder.count_instructions(int(3.5 * n))
            c[i, j] = a[:, i] @ a[:, j]

        for i in range(n):
            for j in range(n):
                package.th_fork(dot, i, j, ha.column_base(i), ha.column_base(j))
        package.th_run(0)
        return {"C": c, "A": a}

    program.__name__ = f"gram_threaded_fold_{fold}"
    return program


class TestFolding:
    def test_symmetric_folding_halves_bins(self, benchmark):
        import numpy as np

        simulator = Simulator(r8000(64))
        plain = simulator.run(gram_program(CFG, fold=False))

        def folded_run():
            return Simulator(r8000(64)).run(gram_program(CFG, fold=True))

        folded = benchmark.pedantic(folded_run, rounds=1, iterations=1)
        # Section 2.3: folding "can ... reduce the number of bins by 50%"
        # (the diagonal bins cannot merge, so slightly above half).
        assert folded.sched.bins < 0.7 * plain.sched.bins
        assert folded.sched.bins >= plain.sched.bins // 2
        # Folded bins hold (i, j) and (j, i) threads together — the same
        # two blocks of data, so misses stay comparable.
        assert folded.l2_misses < 1.5 * plain.l2_misses
        # And the computation is unchanged.
        np.testing.assert_allclose(
            folded.payload["C"],
            folded.payload["A"].T @ folded.payload["A"],
            rtol=1e-10,
        )


class TestTraversalPolicy:
    @pytest.mark.parametrize("policy", ["creation", "sorted", "snake", "greedy"])
    def test_policies_all_preserve_locality(self, benchmark, policy):
        result = benchmark.pedantic(
            run_threaded,
            args=(replace(CFG, policy=policy),),
            rounds=1,
            iterations=1,
        )
        baseline = run_threaded(CFG)
        # For matmul's fork order, creation order is already near-optimal
        # (the paper's choice); alternative tours stay within 25%.
        assert result.l2_misses < 1.25 * baseline.l2_misses

    def test_greedy_tour_helps_scrambled_fork_order(self, benchmark):
        """When forks arrive in scrambled order, creation order is a bad
        tour; the greedy nearest-neighbour tour recovers adjacency."""
        import numpy as np

        from repro.apps.matmul.programs import _allocate, _trace_transpose

        cfg = CFG

        def scrambled(policy):
            def program(ctx):
                (ha, hb, hc), a, b, c = _allocate(ctx, cfg)
                recorder = ctx.recorder
                n = cfg.n
                _trace_transpose(ctx, ha, n)
                at = a.T.copy()
                package = ctx.make_thread_package(policy=policy)

                def dot(i, j):
                    recorder.record_interleaved([ha.column(i), hb.column(j)])
                    recorder.record(hc.element(i, j), writes=1)
                    recorder.count_instructions(int(3.5 * n))
                    c[i, j] = at[:, i] @ b[:, j]

                rng = np.random.default_rng(13)
                pairs = [(i, j) for i in range(n) for j in range(n)]
                rng.shuffle(pairs)
                for i, j in pairs:
                    package.th_fork(
                        dot, i, j, ha.column_base(i), hb.column_base(j)
                    )
                package.th_run(0)
                _trace_transpose(ctx, ha, n)
                return {"C": c}

            program.__name__ = f"matmul_scrambled_{policy}"
            return program

        simulator = Simulator(r8000(64))
        creation = simulator.run(scrambled("creation"))
        greedy = benchmark.pedantic(
            simulator.run, args=(scrambled("greedy"),), rounds=1, iterations=1
        )
        # Bin contents are identical either way; only the tour differs.
        # Scrambled creation order gives a random tour; greedy recovers
        # cross-bin block reuse.
        assert greedy.l2_misses <= creation.l2_misses


class TestHashTableSize:
    def test_tiny_hash_table_still_correct_but_collides(self, benchmark):
        import numpy as np

        small = benchmark.pedantic(
            run_threaded,
            args=(replace(CFG, hash_size=2),),
            rounds=1,
            iterations=1,
        )
        reference = small.payload["A"] @ small.payload["B"]
        np.testing.assert_allclose(small.payload["C"], reference, rtol=1e-10)
        # Distinct blocks masked into 8 slots chain rather than merge:
        # the bin count is unchanged.
        assert small.sched.bins == run_threaded(CFG).sched.bins


class TestGroupCapacity:
    @pytest.mark.parametrize("capacity", [16, 256])
    def test_group_capacity_tradeoff(self, benchmark, capacity):
        """Smaller groups mean more slab allocations (more cold lines);
        the run must stay correct and the overhead bounded."""
        costs = ThreadCostModel(group_capacity=capacity)
        result = benchmark.pedantic(
            run_threaded,
            args=(CFG,),
            kwargs={"costs": costs},
            rounds=1,
            iterations=1,
        )
        assert result.dispatches == CFG.n * CFG.n


class TestHintDimensionality:
    def test_one_dimensional_hints_degrade_matmul(self, benchmark):
        """Scheduling dot products by only the A column ignores B reuse:
        bins span all of B, so capacity misses rise toward untiled."""
        from repro.apps.matmul.programs import _allocate, _trace_transpose

        cfg = CFG

        def one_dim_program(ctx):
            (ha, hb, hc), a, b, c = _allocate(ctx, cfg)
            recorder = ctx.recorder
            n = cfg.n
            _trace_transpose(ctx, ha, n)
            at = a.T.copy()
            package = ctx.make_thread_package()

            def dot(i, j):
                recorder.record_interleaved([ha.column(i), hb.column(j)])
                recorder.record(hc.element(i, j), writes=1)
                recorder.count_instructions(int(3.5 * n))
                c[i, j] = at[:, i] @ b[:, j]

            for i in range(n):
                for j in range(n):
                    package.th_fork(dot, i, j, ha.column_base(i))  # 1-D hint
            package.th_run(0)
            _trace_transpose(ctx, ha, n)
            return {"C": c}

        one_dim_program.__name__ = "matmul_threaded_1d_hints"
        simulator = Simulator(r8000(64))
        one_dim = benchmark.pedantic(
            simulator.run, args=(one_dim_program,), rounds=1, iterations=1
        )
        two_dim = run_threaded(CFG)
        assert one_dim.l2_misses > 1.5 * two_dim.l2_misses
