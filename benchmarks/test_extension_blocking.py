"""Extension: general-purpose (blocking) threads on SOR (Section 7)."""

from repro.exp import extension_blocking


def test_extension_blocking_report(report, benchmark):
    result = benchmark.pedantic(
        extension_blocking.run, kwargs={"quick": False}, rounds=1, iterations=1
    )
    report(result)
