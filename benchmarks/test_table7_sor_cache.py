"""Table 7: SOR cache simulation (R8000)."""

from repro.exp import table7_sor_cache


def test_table7_report(report, benchmark):
    result = benchmark.pedantic(
        table7_sor_cache.run, kwargs={"quick": False}, rounds=1, iterations=1
    )
    report(result)
