"""Table 3: matmul cache simulation (untiled / tiled / threaded, R8000)."""

from repro.exp import table3_matmul_cache


def test_table3_report(report, benchmark):
    result = benchmark.pedantic(
        table3_matmul_cache.run, kwargs={"quick": False}, rounds=1, iterations=1
    )
    report(result)
