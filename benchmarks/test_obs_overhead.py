"""The telemetry overhead guard.

The observability layer's contract (DESIGN.md section 9) is quantitative:

* **disabled** (the default), instrumentation may cost < 1% of a
  mid-size simulation's wall clock;
* **enabled**, the spans + metrics + cache sampler together may cost
  < 15% — cheap enough to leave on for every recorded campaign.

The disabled half is asserted *structurally*: disabled telemetry is the
shared ``DISABLED`` singleton (a null bus and null registry behind one
``enabled`` flag), and with it in place the simulator attaches no cache
sampler, so the hierarchy runs its uninstrumented ``access_data`` class
method — the baseline path *is* the disabled path.  The benchmark
asserts that binding on a probe hierarchy (deterministic, flake-free)
and records ``disabled_overhead_pct: 0.0`` with the method stated.

The enabled half is measured: one discarded warmup pass, then
median-of-N wall clock per configuration, interleaved round-robin so
slow drift hits all configurations alike.  Two of the timed
configurations run *identical code* (an A/A pair); the spread between
their medians is the run's measured noise floor, recorded in the
payload.  The enabled budget is enforced against a noise-widened bound
(budget + noise floor) — and skipped outright, with the payload saying
so, when the floor itself exceeds the budget, because a timer that
cannot tell the same code apart to within 15% cannot referee a 15%
budget (shared CI runners regularly measure same-code deltas of
10-30%).
"""

from __future__ import annotations

import json
import statistics
import time
from pathlib import Path

from repro.apps.matmul.config import MatmulConfig
from repro.apps.matmul.programs import threaded
from repro.machine import r8000
from repro.obs import Telemetry
from repro.obs.sampler import CacheSampler
from repro.obs.telemetry import DISABLED
from repro.sim.engine import Simulator

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_FILE = REPO_ROOT / "BENCH_obs.json"

#: Budgets, as fractions of the baseline wall clock.
DISABLED_BUDGET = 0.01
ENABLED_BUDGET = 0.15

#: n=96 forks 9216 threads — mid-size: big enough that per-fork and
#: per-batch costs dominate, small enough to repeat several times.
N = 96
REPEATS = 5


def run_once(telemetry: Telemetry | None) -> float:
    program = threaded(MatmulConfig(n=N))
    simulator = Simulator(r8000(), telemetry=telemetry)
    started = time.perf_counter()
    simulator.run(program, name="matmul_threaded")
    return time.perf_counter() - started


def test_overhead_budgets():
    # Structural disabled-cost guarantee: no telemetry handle resolves
    # to the DISABLED singleton, and a sidecar-free hierarchy binds the
    # uninstrumented class method — attaching a sampler (what enabled
    # telemetry does) rebinds it, detaching restores it.
    assert not DISABLED.enabled
    probe = r8000().build_hierarchy()
    assert "access_data" not in vars(probe), (
        "a sidecar-free hierarchy must run the uninstrumented "
        "access_data (disabled telemetry would no longer be free)"
    )
    probe.observer = CacheSampler(Telemetry(), program="bench_probe")
    assert "access_data" in vars(probe), (
        "attaching the cache sampler must rebind access_data to the "
        "instrumented variant"
    )
    probe.observer = None
    assert "access_data" not in vars(probe)
    disabled_overhead = 0.0

    run_once(None)  # discarded warmup: imports, pools, branch caches
    # Interleave the three configurations within each round so slow
    # drift (thermal, scheduler) hits all of them alike; take the
    # median per configuration.  The first two run identical code —
    # their spread is this run's same-code noise floor.
    baseline_times, aa_times, enabled_times = [], [], []
    for _ in range(REPEATS):
        baseline_times.append(run_once(None))
        aa_times.append(run_once(None))  # A/A pair: same code
        enabled_times.append(run_once(Telemetry()))
    baseline = statistics.median(baseline_times)
    aa = statistics.median(aa_times)
    enabled = statistics.median(enabled_times)

    noise_floor = abs(aa / baseline - 1.0)
    enabled_overhead = max(0.0, enabled / baseline - 1.0)
    enabled_enforced = noise_floor < ENABLED_BUDGET

    payload = {
        "benchmark": "telemetry overhead, threaded matmul",
        "n": N,
        "repeats": REPEATS,
        "baseline_s": round(baseline, 4),
        "enabled_s": round(enabled, 4),
        "noise_floor_pct": round(100 * noise_floor, 2),
        "disabled_overhead_pct": round(100 * disabled_overhead, 2),
        "disabled_method": (
            "structural: disabled telemetry is the DISABLED singleton; "
            "no sampler is attached, so the hierarchy runs its "
            "uninstrumented access_data (identity asserted)"
        ),
        "enabled_overhead_pct": round(100 * enabled_overhead, 2),
        "enabled_enforced": enabled_enforced,
        "budgets": {
            "disabled_pct": 100 * DISABLED_BUDGET,
            "enabled_pct": 100 * ENABLED_BUDGET,
        },
    }
    RESULT_FILE.write_text(json.dumps(payload, indent=2) + "\n")

    assert disabled_overhead < DISABLED_BUDGET, (
        f"disabled telemetry cost {100 * disabled_overhead:.2f}% "
        f"(budget {100 * DISABLED_BUDGET:.0f}%)"
    )
    if enabled_enforced:
        bound = ENABLED_BUDGET + noise_floor
        assert enabled_overhead < bound, (
            f"enabled telemetry cost {100 * enabled_overhead:.2f}% "
            f"(budget {100 * ENABLED_BUDGET:.0f}% + noise floor "
            f"{100 * noise_floor:.2f}%)"
        )
