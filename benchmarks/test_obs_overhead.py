"""The telemetry overhead guard.

The observability layer's contract (DESIGN.md section 9) is quantitative:

* **disabled** (the default), instrumentation may cost < 1% of a
  mid-size simulation's wall clock — it is one attribute test per site;
* **enabled**, the spans + metrics + cache sampler together may cost
  < 15% — cheap enough to leave on for every recorded campaign.

This benchmark measures both ratios on the threaded matmul (the paper's
flagship kernel: tens of thousands of forks through the bin hash, then
a full bin sweep) and fails if either budget is exceeded.  Results are
also written to ``BENCH_obs.json`` at the repo root so the numbers are
tracked in version control alongside the code that must honor them.

Timing discipline: min-of-N of whole-run wall clock.  The minimum is
the right statistic for overhead ratios — noise only ever adds time.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.apps.matmul.config import MatmulConfig
from repro.apps.matmul.programs import threaded
from repro.machine import r8000
from repro.obs import Telemetry
from repro.sim.engine import Simulator

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_FILE = REPO_ROOT / "BENCH_obs.json"

#: Budgets, as fractions of the baseline wall clock.
DISABLED_BUDGET = 0.01
ENABLED_BUDGET = 0.15

#: n=96 forks 9216 threads — mid-size: big enough that per-fork and
#: per-batch costs dominate, small enough to repeat several times.
N = 96
REPEATS = 5


def run_once(telemetry: Telemetry | None) -> float:
    program = threaded(MatmulConfig(n=N))
    simulator = Simulator(r8000(), telemetry=telemetry)
    started = time.perf_counter()
    simulator.run(program, name="matmul_threaded")
    return time.perf_counter() - started


def test_overhead_budgets():
    # Interleave the three configurations within each round so slow
    # drift (thermal, scheduler) hits all of them alike; take min-of-N
    # per configuration.
    baseline_times, disabled_times, enabled_times = [], [], []
    for _ in range(REPEATS):
        baseline_times.append(run_once(None))  # no handle anywhere
        disabled_times.append(run_once(None))  # same path: jitter floor
        enabled_times.append(run_once(Telemetry()))
    baseline = min(baseline_times)
    disabled = min(disabled_times)
    enabled = min(enabled_times)

    disabled_overhead = disabled / baseline - 1.0
    enabled_overhead = enabled / baseline - 1.0

    payload = {
        "benchmark": "telemetry overhead, threaded matmul",
        "n": N,
        "repeats": REPEATS,
        "baseline_s": round(baseline, 4),
        "disabled_s": round(disabled, 4),
        "enabled_s": round(enabled, 4),
        "disabled_overhead_pct": round(100 * disabled_overhead, 2),
        "enabled_overhead_pct": round(100 * enabled_overhead, 2),
        "budgets": {
            "disabled_pct": 100 * DISABLED_BUDGET,
            "enabled_pct": 100 * ENABLED_BUDGET,
        },
    }
    RESULT_FILE.write_text(json.dumps(payload, indent=2) + "\n")

    assert disabled_overhead < DISABLED_BUDGET, (
        f"disabled telemetry cost {100 * disabled_overhead:.2f}% "
        f"(budget {100 * DISABLED_BUDGET:.0f}%)"
    )
    assert enabled_overhead < ENABLED_BUDGET, (
        f"enabled telemetry cost {100 * enabled_overhead:.2f}% "
        f"(budget {100 * ENABLED_BUDGET:.0f}%)"
    )
