"""Table 1: thread-primitive overhead micro-benchmark.

Benchmarks the real per-thread cost of this implementation's ``th_fork``
and ``th_run`` (the analog of the paper's 1,048,576-null-thread loop)
and prints the Table 1 comparison.
"""

from repro.core.package import ThreadPackage
from repro.exp import table1_overhead

L2 = 2 * 1024 * 1024
THREADS = 1 << 15


def _null(a, b):
    return None


def test_table1_report(report, benchmark):
    result = benchmark.pedantic(
        table1_overhead.run, kwargs={"quick": True}, rounds=1, iterations=1
    )
    report(result)


def test_fork_throughput(benchmark):
    """Pure th_fork cost (the paper's Fork row)."""

    def fork_many():
        package = ThreadPackage(l2_size=L2)
        block = package.scheduler.block_size
        for i in range(THREADS):
            package.th_fork(_null, i, None, 8 + (i % 32) * block)
        return package

    package = benchmark(fork_many)
    assert package.pending_threads == THREADS


def test_run_throughput(benchmark):
    """Pure dispatch cost (the paper's Run row), re-running a kept set."""
    package = ThreadPackage(l2_size=L2)
    block = package.scheduler.block_size
    for i in range(THREADS):
        package.th_fork(_null, i, None, 8 + (i % 32) * block)

    def run_all():
        return package.th_run(1)  # keep=1: re-runnable

    stats = benchmark(run_all)
    assert stats.threads == THREADS


def test_fork_run_total(benchmark):
    """Fork + run combined (the paper's Total row)."""

    def fork_and_run():
        package = ThreadPackage(l2_size=L2)
        block = package.scheduler.block_size
        for i in range(THREADS):
            package.th_fork(_null, i, None, 8 + (i % 32) * block)
        return package.th_run(0)

    stats = benchmark(fork_and_run)
    assert stats.threads == THREADS
