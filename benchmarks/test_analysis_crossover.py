"""Analysis: the threading-pays crossover (working set vs L2 size)."""

from repro.exp import analysis_crossover


def test_analysis_crossover_report(report, benchmark):
    result = benchmark.pedantic(
        analysis_crossover.run, kwargs={"quick": False}, rounds=1, iterations=1
    )
    report(result)
