"""Extension: dependence-aware SOR threading (paper Section 6 future work)."""

from repro.exp import extension_deps


def test_extension_deps_report(report, benchmark):
    result = benchmark.pedantic(
        extension_deps.run, kwargs={"quick": False}, rounds=1, iterations=1
    )
    report(result)
