"""Table 5: PDE cache simulation (R8000)."""

from repro.exp import table5_pde_cache


def test_table5_report(report, benchmark):
    result = benchmark.pedantic(
        table5_pde_cache.run, kwargs={"quick": False}, rounds=1, iterations=1
    )
    report(result)
