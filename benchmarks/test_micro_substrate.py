"""Micro-benchmarks of the substrate: cache simulator and trace layer.

These are true repeated-measurement benchmarks (unlike the table
regenerations), tracking the throughput of the hot paths: the
classifying cache's batch loop and the segment-to-line conversion.
"""

import numpy as np

from repro.cache.classify import ClassifyingCache
from repro.cache.config import CacheConfig
from repro.cache.hierarchy import CacheHierarchy
from repro.mem.arrays import RefSegment
from repro.trace.recorder import TraceRecorder, interleave_segments, segment_to_lines


def make_hierarchy():
    l1 = CacheConfig("L1", 2048, 32, 1)
    l2 = CacheConfig("L2", 32 * 1024, 128, 4)
    return CacheHierarchy(l1, l1, l2)


def test_classify_sequential_stream(benchmark):
    """Streaming access: mostly compulsory misses, minimal LRU churn."""
    lines = list(range(50_000))

    def run():
        cache = ClassifyingCache(CacheConfig("c", 32 * 1024, 128, 4))
        cache.process(lines)
        return cache

    cache = benchmark(run)
    assert cache.stats.misses == 50_000


def test_classify_looping_stream(benchmark):
    """Cyclic reuse larger than the cache: the capacity-miss fast path."""
    lines = list(range(512)) * 100

    def run():
        cache = ClassifyingCache(CacheConfig("c", 32 * 1024, 128, 4))
        cache.process(lines)
        return cache

    cache = benchmark(run)
    assert cache.stats.capacity > 0


def test_hierarchy_filtered_stream(benchmark):
    """L1 absorbing a hot working set; L2 sees only the cold stream."""
    hot = list(range(32)) * 500
    cold = list(range(1000, 17_000))
    lines = hot + cold

    def run():
        hierarchy = make_hierarchy()
        hierarchy.access_data(lines)
        return hierarchy

    hierarchy = benchmark(run)
    assert hierarchy.l2.stats.accesses < len(lines)


def test_segment_conversion_contiguous(benchmark):
    seg = RefSegment(base=0x10000, stride=8, count=4096, element_size=8)
    lines, counts = benchmark(segment_to_lines, seg, 5)
    assert sum(counts) == 4096


def test_segment_conversion_strided(benchmark):
    seg = RefSegment(base=0x10000, stride=2008, count=4096, element_size=8)
    lines, _counts = benchmark(segment_to_lines, seg, 5)
    assert len(lines) == 4096


def test_interleave_six_segments(benchmark):
    """The PDE relaxation's per-column pattern."""
    segments = [
        RefSegment(base=0x10000 + 4096 * k, stride=16, count=128, element_size=8)
        for k in range(6)
    ]
    lines, counts = benchmark(interleave_segments, segments, 5)
    assert sum(counts) == 6 * 128


def test_recorder_end_to_end(benchmark):
    """A full record() round trip: conversion plus both cache levels."""
    def run():
        recorder = TraceRecorder(make_hierarchy())
        for j in range(64):
            recorder.record(
                RefSegment(0x10000 + j * 1024, 8, 128, 8), writes=128
            )
        return recorder

    recorder = benchmark(run)
    assert recorder.hierarchy.snapshot().data_refs == 64 * 128
