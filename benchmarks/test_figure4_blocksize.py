"""Figure 4: execution time versus block dimension size (R8000 sweep)."""

from repro.exp import figure4_blocksize


def test_figure4_report(report, benchmark):
    result = benchmark.pedantic(
        figure4_blocksize.run, kwargs={"quick": False}, rounds=1, iterations=1
    )
    report(result)
