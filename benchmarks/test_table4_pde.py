"""Table 4: PDE performance (3 versions x 2 machines)."""

from repro.exp import table4_pde_perf


def test_table4_report(report, benchmark):
    result = benchmark.pedantic(
        table4_pde_perf.run, kwargs={"quick": False}, rounds=1, iterations=1
    )
    report(result)
