"""Table 8: N-body performance (2 versions x 2 machines, 4 iterations)."""

from repro.exp import table8_nbody_perf


def test_table8_report(report, benchmark):
    result = benchmark.pedantic(
        table8_nbody_perf.run, kwargs={"quick": False}, rounds=1, iterations=1
    )
    report(result)
