"""Benchmark harness configuration.

Each ``test_table*.py`` / ``test_figure4.py`` benchmark regenerates one
table or figure of the paper on the scaled machine models and prints it
(with its shape checks) to the terminal, so a ``pytest benchmarks/
--benchmark-only`` run leaves the full reproduction report in its output.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def report(capsys):
    """Print an experiment result outside the captured region."""

    def _print(result):
        with capsys.disabled():
            print()
            print(result.render())
        failed = [str(c) for c in result.checks if not c.passed]
        assert not failed, "shape checks failed:\n" + "\n".join(failed)
        return result

    return _print
