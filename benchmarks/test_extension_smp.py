"""Extension: the SMP speedup experiment (paper Section 7 future work)."""

from repro.exp import extension_smp


def test_extension_smp_report(report, benchmark):
    result = benchmark.pedantic(
        extension_smp.run, kwargs={"quick": False}, rounds=1, iterations=1
    )
    report(result)
