"""Table 2: matrix multiply performance (5 versions x 2 machines)."""

from repro.exp import table2_matmul_perf


def test_table2_report(report, benchmark):
    result = benchmark.pedantic(
        table2_matmul_perf.run, kwargs={"quick": False}, rounds=1, iterations=1
    )
    report(result)
