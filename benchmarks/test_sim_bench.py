"""The simulator performance guard: kernel throughput + campaign scaling.

Two measurements, recorded in ``BENCH_sim.json`` at the repo root so the
perf trajectory lives in version control alongside the code:

**Kernel throughput.**  The table-3 threaded matmul is simulated once
with the L1D batch stream captured, then that exact trace is replayed
through the optimized kernel (:meth:`ClassifyingCache.process`: dict
LRU, hoisted counts, run-length fast path, direct-mapped loop) and
through the naive per-line list-based reference model
(:mod:`repro.cache.reference`) that the golden-equivalence suite pins
it to.  The optimized kernel must be at least ``KERNEL_SPEEDUP_MIN``
times faster — and must not regress more than 20% against the speedup
committed in ``BENCH_sim.json``.

**Profiling-off cost.**  With no sidecar attached a hierarchy's
``access_data`` *is* the uninstrumented class method — attaching an
oracle/observer/profiler rebinds the instance to the instrumented
variant, and detaching restores the plain one.  Disabled profiling
therefore costs zero instructions by construction; shared-runner noise
here swamps any attempt to time a sub-1% delta (same-code A/A runs
measure ±15%), so the benchmark asserts the *binding* — deterministic
and flake-free — and records ``off_overhead_pct: 0.0`` with the method
stated.  The profiler-*on* factor is measured and recorded alongside
for information; it gates nothing (profiling is opt-in).

**Campaign scaling.**  The same four-experiment quick campaign is run
serially and with ``--jobs 4``.  On a runner with at least four CPUs
the parallel campaign must finish at least ``CAMPAIGN_SPEEDUP_MIN``
times faster; with two or three CPUs any speedup at all is still owed
(``CAMPAIGN_SPEEDUP_MIN_SMALL``); only a single-CPU machine — where the
workers purely time-share — records the ratio without enforcing it.
The benchmark forces the pool (``force_parallel``) so the regression it
measures is the real pool cost; ``auto_degraded`` records whether a
production run on this host would have taken the serial loop instead.

**Stored-trace replay.**  The table-3 stream is written to a
content-addressed :class:`repro.trace.store.TraceStore` and replayed
end to end (:meth:`Simulator.replay`, memory-mapped read, vectorized
direct-mapped kernel).  Replay must beat live regeneration by
``REPLAY_SPEEDUP_MIN`` with byte-identical statistics, and must not
regress more than 20% against the committed replay speedup.  The
per-stage split (generation vs. kernel vs. replay) is recorded so the
trajectory shows *where* simulation time goes.

Timing discipline: min-of-N wall clock (noise only ever adds time).
"""

from __future__ import annotations

import io
import json
import os
import tempfile
import time
from dataclasses import replace
from pathlib import Path

from repro.apps.matmul.config import MatmulConfig
from repro.apps.matmul.programs import threaded
from repro.cache.classify import ClassifyingCache
from repro.cache.reference import ReferenceClassifyingCache
from repro.machine import r8000
from repro.obs.profile import LocalityProfiler
from repro.resilience.campaign import (
    EXIT_OK,
    CampaignConfig,
    _effective_cpus,
    run_campaign,
)
from repro.sim.engine import Simulator
from repro.trace.store import TraceCapture, TraceStore, trace_key_for

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_FILE = REPO_ROOT / "BENCH_sim.json"

#: Acceptance floors (see ISSUE/DESIGN §10).
KERNEL_SPEEDUP_MIN = 1.5
#: Profiling *off* may cost at most this fraction of hierarchy replay
#: time (DESIGN §14).  Structurally 0.0 today — no sidecar means the
#: uninstrumented method is bound — the budget stays on record for any
#: future design that reintroduces a per-batch check.
PROFILING_OFF_BUDGET = 0.01
CAMPAIGN_SPEEDUP_MIN = 2.0
#: Floor applied when the runner has more than one CPU but fewer than
#: CAMPAIGN_JOBS: parallel dispatch must still beat serial outright.
CAMPAIGN_SPEEDUP_MIN_SMALL = 1.1
#: Replaying a stored trace end to end must beat regenerating it live
#: by at least this factor (mmap read + vectorized kernel vs. the full
#: program run).
REPLAY_SPEEDUP_MIN = 5.0
#: A run may not lose more than 20% of the committed kernel speedup.
REGRESSION_FRACTION = 0.8

KERNEL_REPEATS = 3
REPLAY_REPEATS = 3
#: Repeats for the informational profiler-on factor (min-of-N).
PROFILING_REPEATS = 5
CAMPAIGN_REPEATS = 2
CAMPAIGN_IDS = ["table4", "table6", "table8", "extension_blocking"]
CAMPAIGN_JOBS = 4

#: The table-3 configuration: threaded matmul on the R8000 model.
TRACE_N = 64


def capture_l1d_trace() -> list[tuple[list[int], list[int] | None]]:
    """One table-3 simulation with every L1D ``process`` batch recorded."""
    batches: list[tuple[list[int], list[int] | None]] = []
    original = ClassifyingCache.process

    def recording(self, lines, counts=None):
        if self.config.name == "L1D":
            batches.append(
                (list(lines), list(counts) if counts is not None else None)
            )
        return original(self, lines, counts)

    ClassifyingCache.process = recording
    try:
        Simulator(r8000()).run(
            threaded(MatmulConfig(n=TRACE_N)), name="bench_capture"
        )
    finally:
        ClassifyingCache.process = original
    return batches


def replay_seconds(factory, batches) -> float:
    best = float("inf")
    config = r8000().l1d
    for _ in range(KERNEL_REPEATS):
        cache = factory(config)
        started = time.perf_counter()
        for lines, counts in batches:
            cache.process(lines, counts)
        best = min(best, time.perf_counter() - started)
    return best


def hierarchy_replay_seconds(batches, profiler_factory=None) -> float:
    """Replay the captured stream through ``access_data``.

    Without ``profiler_factory`` every sidecar slot stays ``None`` — the
    shipped default, running the uninstrumented class method; with it a
    live profiler is attached (the opt-in cost, recorded for
    information).
    """
    best = float("inf")
    machine = r8000()
    for _ in range(PROFILING_REPEATS):
        hierarchy = machine.build_hierarchy()
        if profiler_factory is not None:
            hierarchy.profiler = profiler_factory()
        started = time.perf_counter()
        for lines, counts in batches:
            hierarchy.access_data(lines, counts)
        best = min(best, time.perf_counter() - started)
    return best


def stored_replay_profile() -> dict:
    """The stored-replay end of the stage profile.

    ``live_s`` is a full :meth:`Simulator.run` (stream generation plus
    cache kernel); ``replay_s`` is the complete stored path —
    ``TraceStore.get`` (mmap read) plus :meth:`Simulator.replay` —
    whose statistics must equal the live run's exactly.  The caller
    splits ``live_s`` into generation and kernel shares using its
    ``access_data`` replay of the same stream.
    """
    machine = r8000()
    config = MatmulConfig(n=TRACE_N)
    simulator = Simulator(machine, verify=False)
    with tempfile.TemporaryDirectory() as scratch:
        store = TraceStore(Path(scratch) / "traces")
        capture = TraceCapture()
        live = simulator.run(threaded(config), capture=capture)
        key = trace_key_for(threaded(config), config, machine, 4096)
        assert store.put(key, capture, live, machine, 4096) is not None

        live_s = float("inf")
        for _ in range(REPLAY_REPEATS):
            started = time.perf_counter()
            rerun = simulator.run(threaded(config))
            live_s = min(live_s, time.perf_counter() - started)
        assert rerun.stats == live.stats

        replay_s = float("inf")
        for _ in range(REPLAY_REPEATS):
            started = time.perf_counter()
            stored = store.get(key)
            replayed = simulator.replay(stored)
            replay_s = min(replay_s, time.perf_counter() - started)
        assert replayed.stats == live.stats
        assert replayed.time == live.time
        assert replace(replayed.sched, seq=0) == replace(live.sched, seq=0)
    return {
        "trace": f"table3 threaded matmul (n={TRACE_N}), stored end to end",
        "repeats": REPLAY_REPEATS,
        "live_s": live_s,
        "replay_s": replay_s,
        "speedup": live_s / replay_s,
    }


def campaign_seconds(jobs: int) -> float:
    best = float("inf")
    for _ in range(CAMPAIGN_REPEATS):
        # force_parallel keeps the pool even on a 1-CPU host: the point
        # of the parallel measurement is the pool's true cost, which is
        # exactly what the auto-degrade gate exists to avoid.
        config = CampaignConfig(
            ids=list(CAMPAIGN_IDS),
            quick=True,
            save=False,
            jobs=jobs,
            force_parallel=True,
        )
        out, err = io.StringIO(), io.StringIO()
        started = time.perf_counter()
        code = run_campaign(config, out=out, err=err)
        elapsed = time.perf_counter() - started
        assert code == EXIT_OK, err.getvalue()
        best = min(best, elapsed)
    return best


def committed_speedup(section: str) -> float | None:
    if not RESULT_FILE.exists():
        return None
    try:
        return json.loads(RESULT_FILE.read_text())[section]["speedup"]
    except (json.JSONDecodeError, KeyError):
        return None


def test_kernel_and_campaign_throughput():
    batches = capture_l1d_trace()
    total_lines = sum(len(lines) for lines, _ in batches)

    optimized_s = replay_seconds(ClassifyingCache, batches)
    reference_s = replay_seconds(ReferenceClassifyingCache, batches)
    kernel_speedup = reference_s / optimized_s
    baseline_speedup = committed_speedup("kernel")
    baseline_replay = committed_speedup("replay")

    # Structural profiling-off guarantee: a fresh hierarchy binds the
    # uninstrumented class method; attaching a profiler installs the
    # instrumented variant per instance; detaching restores the plain
    # one.  This is the whole disabled-cost story — no sidecar, no
    # sidecar code — so the "measurement" is an identity check.
    probe = r8000().build_hierarchy()
    assert "access_data" not in vars(probe), (
        "a sidecar-free hierarchy must run the uninstrumented "
        "access_data (profiling off would no longer be free)"
    )
    probe.profiler = LocalityProfiler("bench_probe", "r8000")
    assert "access_data" in vars(probe), (
        "attaching a profiler must rebind access_data to the "
        "instrumented variant"
    )
    probe.profiler = None
    assert "access_data" not in vars(probe), (
        "detaching the last sidecar must restore the uninstrumented "
        "access_data"
    )
    off_overhead = 0.0

    off_s = hierarchy_replay_seconds(batches)
    profiler_on_s = hierarchy_replay_seconds(
        batches,
        profiler_factory=lambda: LocalityProfiler("bench_replay", "r8000"),
    )
    on_factor = profiler_on_s / off_s

    replay_profile = stored_replay_profile()
    replay_speedup = replay_profile["speedup"]

    serial_s = campaign_seconds(jobs=1)
    parallel_s = campaign_seconds(jobs=CAMPAIGN_JOBS)
    campaign_speedup = serial_s / parallel_s
    cpu_count = os.cpu_count() or 1
    # Whether a production (unforced) --jobs run on this host would
    # have taken the serial loop instead of the measured pool.
    auto_degraded = _effective_cpus() <= 1
    if cpu_count >= CAMPAIGN_JOBS:
        campaign_floor = CAMPAIGN_SPEEDUP_MIN
    elif cpu_count > 1:
        campaign_floor = CAMPAIGN_SPEEDUP_MIN_SMALL
    else:
        campaign_floor = None  # pure time-sharing: record, don't enforce

    payload = {
        "benchmark": "simulator kernel throughput + campaign parallelism",
        "kernel": {
            "trace": f"table3 threaded matmul (n={TRACE_N}), R8000 L1D stream",
            "batches": len(batches),
            "lines": total_lines,
            "repeats": KERNEL_REPEATS,
            "optimized_s": round(optimized_s, 4),
            "reference_s": round(reference_s, 4),
            "optimized_lines_per_s": round(total_lines / optimized_s),
            "reference_lines_per_s": round(total_lines / reference_s),
            "speedup": round(kernel_speedup, 2),
        },
        "profiling": {
            "trace": "same captured L1D stream, CacheHierarchy.access_data",
            "repeats": PROFILING_REPEATS,
            "off_s": round(off_s, 4),
            "profiler_on_s": round(profiler_on_s, 4),
            "off_overhead_pct": round(100 * off_overhead, 2),
            "off_method": (
                "structural: with no sidecar attached, access_data is the "
                "uninstrumented class method (identity asserted)"
            ),
            "on_slowdown_factor": round(on_factor, 2),
        },
        "replay": {
            "trace": replay_profile["trace"],
            "repeats": replay_profile["repeats"],
            "live_s": round(replay_profile["live_s"], 4),
            "replay_s": round(replay_profile["replay_s"], 4),
            "speedup": round(replay_speedup, 2),
            "stages": {
                # Where one live simulation's time goes: producing the
                # reference stream vs. the cache kernel consuming it —
                # and what the stored path costs instead.
                "generation_s": round(
                    max(replay_profile["live_s"] - off_s, 0.0), 4
                ),
                "kernel_s": round(off_s, 4),
                "replay_s": round(replay_profile["replay_s"], 4),
            },
        },
        "campaign": {
            "ids": list(CAMPAIGN_IDS),
            "quick": True,
            "jobs": CAMPAIGN_JOBS,
            "repeats": CAMPAIGN_REPEATS,
            "cpu_count": cpu_count,
            "forced_parallel": True,
            "auto_degraded": auto_degraded,
            "serial_s": round(serial_s, 2),
            "parallel_s": round(parallel_s, 2),
            "speedup": round(campaign_speedup, 2),
        },
        "floors": {
            "kernel_speedup_min": KERNEL_SPEEDUP_MIN,
            "replay_speedup_min": REPLAY_SPEEDUP_MIN,
            "profiling_off_budget_pct": 100 * PROFILING_OFF_BUDGET,
            "campaign_speedup_min": CAMPAIGN_SPEEDUP_MIN,
            "campaign_speedup_min_small": CAMPAIGN_SPEEDUP_MIN_SMALL,
            "campaign_floor_applied": campaign_floor,
            "campaign_floor_enforced": campaign_floor is not None,
            "regression_fraction": REGRESSION_FRACTION,
        },
    }
    RESULT_FILE.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\n{json.dumps(payload, indent=2)}")

    assert kernel_speedup >= KERNEL_SPEEDUP_MIN, (
        f"kernel speedup {kernel_speedup:.2f}x below the "
        f"{KERNEL_SPEEDUP_MIN}x floor"
    )
    assert off_overhead < PROFILING_OFF_BUDGET, (
        f"profiling-off cost {100 * off_overhead:.2f}% of hierarchy replay "
        f"(budget {100 * PROFILING_OFF_BUDGET:.0f}%)"
    )
    if baseline_speedup is not None:
        floor = REGRESSION_FRACTION * baseline_speedup
        assert kernel_speedup >= floor, (
            f"kernel speedup regressed: {kernel_speedup:.2f}x vs committed "
            f"{baseline_speedup:.2f}x (floor {floor:.2f}x)"
        )
    assert replay_speedup >= REPLAY_SPEEDUP_MIN, (
        f"stored-trace replay only {replay_speedup:.2f}x faster than live "
        f"regeneration (floor {REPLAY_SPEEDUP_MIN}x)"
    )
    if baseline_replay is not None:
        floor = REGRESSION_FRACTION * baseline_replay
        assert replay_speedup >= floor, (
            f"replay speedup regressed: {replay_speedup:.2f}x vs committed "
            f"{baseline_replay:.2f}x (floor {floor:.2f}x)"
        )
    if campaign_floor is not None:
        assert campaign_speedup >= campaign_floor, (
            f"--jobs {CAMPAIGN_JOBS} campaign speedup "
            f"{campaign_speedup:.2f}x below the {campaign_floor}x "
            f"floor on a {cpu_count}-CPU machine"
        )
