"""The simulator performance guard: kernel throughput + campaign scaling.

Two measurements, recorded in ``BENCH_sim.json`` at the repo root so the
perf trajectory lives in version control alongside the code:

**Kernel throughput.**  The table-3 threaded matmul is simulated once
with the L1D batch stream captured, then that exact trace is replayed
through the optimized kernel (:meth:`ClassifyingCache.process`: dict
LRU, hoisted counts, run-length fast path, direct-mapped loop) and
through the naive per-line list-based reference model
(:mod:`repro.cache.reference`) that the golden-equivalence suite pins
it to.  The optimized kernel must be at least ``KERNEL_SPEEDUP_MIN``
times faster — and must not regress more than 20% against the speedup
committed in ``BENCH_sim.json``.

**Profiling-off cost.**  With no sidecar attached a hierarchy's
``access_data`` *is* the uninstrumented class method — attaching an
oracle/observer/profiler rebinds the instance to the instrumented
variant, and detaching restores the plain one.  Disabled profiling
therefore costs zero instructions by construction; shared-runner noise
here swamps any attempt to time a sub-1% delta (same-code A/A runs
measure ±15%), so the benchmark asserts the *binding* — deterministic
and flake-free — and records ``off_overhead_pct: 0.0`` with the method
stated.  The profiler-*on* factor is measured and recorded alongside
for information; it gates nothing (profiling is opt-in).

**Campaign scaling.**  The same four-experiment quick campaign is run
serially and with ``--jobs 4``.  On a runner with at least four CPUs
the parallel campaign must finish at least ``CAMPAIGN_SPEEDUP_MIN``
times faster; with two or three CPUs any speedup at all is still owed
(``CAMPAIGN_SPEEDUP_MIN_SMALL``); only a single-CPU machine — where the
workers purely time-share — records the ratio without enforcing it.

Timing discipline: min-of-N wall clock (noise only ever adds time).
"""

from __future__ import annotations

import io
import json
import os
import time
from pathlib import Path

from repro.apps.matmul.config import MatmulConfig
from repro.apps.matmul.programs import threaded
from repro.cache.classify import ClassifyingCache
from repro.cache.reference import ReferenceClassifyingCache
from repro.machine import r8000
from repro.obs.profile import LocalityProfiler
from repro.resilience.campaign import EXIT_OK, CampaignConfig, run_campaign
from repro.sim.engine import Simulator

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_FILE = REPO_ROOT / "BENCH_sim.json"

#: Acceptance floors (see ISSUE/DESIGN §10).
KERNEL_SPEEDUP_MIN = 1.5
#: Profiling *off* may cost at most this fraction of hierarchy replay
#: time (DESIGN §14).  Structurally 0.0 today — no sidecar means the
#: uninstrumented method is bound — the budget stays on record for any
#: future design that reintroduces a per-batch check.
PROFILING_OFF_BUDGET = 0.01
CAMPAIGN_SPEEDUP_MIN = 2.0
#: Floor applied when the runner has more than one CPU but fewer than
#: CAMPAIGN_JOBS: parallel dispatch must still beat serial outright.
CAMPAIGN_SPEEDUP_MIN_SMALL = 1.1
#: A run may not lose more than 20% of the committed kernel speedup.
REGRESSION_FRACTION = 0.8

KERNEL_REPEATS = 3
#: Repeats for the informational profiler-on factor (min-of-N).
PROFILING_REPEATS = 5
CAMPAIGN_REPEATS = 2
CAMPAIGN_IDS = ["table4", "table6", "table8", "extension_blocking"]
CAMPAIGN_JOBS = 4

#: The table-3 configuration: threaded matmul on the R8000 model.
TRACE_N = 64


def capture_l1d_trace() -> list[tuple[list[int], list[int] | None]]:
    """One table-3 simulation with every L1D ``process`` batch recorded."""
    batches: list[tuple[list[int], list[int] | None]] = []
    original = ClassifyingCache.process

    def recording(self, lines, counts=None):
        if self.config.name == "L1D":
            batches.append(
                (list(lines), list(counts) if counts is not None else None)
            )
        return original(self, lines, counts)

    ClassifyingCache.process = recording
    try:
        Simulator(r8000()).run(
            threaded(MatmulConfig(n=TRACE_N)), name="bench_capture"
        )
    finally:
        ClassifyingCache.process = original
    return batches


def replay_seconds(factory, batches) -> float:
    best = float("inf")
    config = r8000().l1d
    for _ in range(KERNEL_REPEATS):
        cache = factory(config)
        started = time.perf_counter()
        for lines, counts in batches:
            cache.process(lines, counts)
        best = min(best, time.perf_counter() - started)
    return best


def hierarchy_replay_seconds(batches, profiler_factory=None) -> float:
    """Replay the captured stream through ``access_data``.

    Without ``profiler_factory`` every sidecar slot stays ``None`` — the
    shipped default, running the uninstrumented class method; with it a
    live profiler is attached (the opt-in cost, recorded for
    information).
    """
    best = float("inf")
    machine = r8000()
    for _ in range(PROFILING_REPEATS):
        hierarchy = machine.build_hierarchy()
        if profiler_factory is not None:
            hierarchy.profiler = profiler_factory()
        started = time.perf_counter()
        for lines, counts in batches:
            hierarchy.access_data(lines, counts)
        best = min(best, time.perf_counter() - started)
    return best


def campaign_seconds(jobs: int) -> float:
    best = float("inf")
    for _ in range(CAMPAIGN_REPEATS):
        config = CampaignConfig(
            ids=list(CAMPAIGN_IDS), quick=True, save=False, jobs=jobs
        )
        out, err = io.StringIO(), io.StringIO()
        started = time.perf_counter()
        code = run_campaign(config, out=out, err=err)
        elapsed = time.perf_counter() - started
        assert code == EXIT_OK, err.getvalue()
        best = min(best, elapsed)
    return best


def committed_kernel_speedup() -> float | None:
    if not RESULT_FILE.exists():
        return None
    try:
        return json.loads(RESULT_FILE.read_text())["kernel"]["speedup"]
    except (json.JSONDecodeError, KeyError):
        return None


def test_kernel_and_campaign_throughput():
    batches = capture_l1d_trace()
    total_lines = sum(len(lines) for lines, _ in batches)

    optimized_s = replay_seconds(ClassifyingCache, batches)
    reference_s = replay_seconds(ReferenceClassifyingCache, batches)
    kernel_speedup = reference_s / optimized_s
    baseline_speedup = committed_kernel_speedup()

    # Structural profiling-off guarantee: a fresh hierarchy binds the
    # uninstrumented class method; attaching a profiler installs the
    # instrumented variant per instance; detaching restores the plain
    # one.  This is the whole disabled-cost story — no sidecar, no
    # sidecar code — so the "measurement" is an identity check.
    probe = r8000().build_hierarchy()
    assert "access_data" not in vars(probe), (
        "a sidecar-free hierarchy must run the uninstrumented "
        "access_data (profiling off would no longer be free)"
    )
    probe.profiler = LocalityProfiler("bench_probe", "r8000")
    assert "access_data" in vars(probe), (
        "attaching a profiler must rebind access_data to the "
        "instrumented variant"
    )
    probe.profiler = None
    assert "access_data" not in vars(probe), (
        "detaching the last sidecar must restore the uninstrumented "
        "access_data"
    )
    off_overhead = 0.0

    off_s = hierarchy_replay_seconds(batches)
    profiler_on_s = hierarchy_replay_seconds(
        batches,
        profiler_factory=lambda: LocalityProfiler("bench_replay", "r8000"),
    )
    on_factor = profiler_on_s / off_s

    serial_s = campaign_seconds(jobs=1)
    parallel_s = campaign_seconds(jobs=CAMPAIGN_JOBS)
    campaign_speedup = serial_s / parallel_s
    cpu_count = os.cpu_count() or 1
    if cpu_count >= CAMPAIGN_JOBS:
        campaign_floor = CAMPAIGN_SPEEDUP_MIN
    elif cpu_count > 1:
        campaign_floor = CAMPAIGN_SPEEDUP_MIN_SMALL
    else:
        campaign_floor = None  # pure time-sharing: record, don't enforce

    payload = {
        "benchmark": "simulator kernel throughput + campaign parallelism",
        "kernel": {
            "trace": f"table3 threaded matmul (n={TRACE_N}), R8000 L1D stream",
            "batches": len(batches),
            "lines": total_lines,
            "repeats": KERNEL_REPEATS,
            "optimized_s": round(optimized_s, 4),
            "reference_s": round(reference_s, 4),
            "optimized_lines_per_s": round(total_lines / optimized_s),
            "reference_lines_per_s": round(total_lines / reference_s),
            "speedup": round(kernel_speedup, 2),
        },
        "profiling": {
            "trace": "same captured L1D stream, CacheHierarchy.access_data",
            "repeats": PROFILING_REPEATS,
            "off_s": round(off_s, 4),
            "profiler_on_s": round(profiler_on_s, 4),
            "off_overhead_pct": round(100 * off_overhead, 2),
            "off_method": (
                "structural: with no sidecar attached, access_data is the "
                "uninstrumented class method (identity asserted)"
            ),
            "on_slowdown_factor": round(on_factor, 2),
        },
        "campaign": {
            "ids": list(CAMPAIGN_IDS),
            "quick": True,
            "jobs": CAMPAIGN_JOBS,
            "repeats": CAMPAIGN_REPEATS,
            "cpu_count": cpu_count,
            "serial_s": round(serial_s, 2),
            "parallel_s": round(parallel_s, 2),
            "speedup": round(campaign_speedup, 2),
        },
        "floors": {
            "kernel_speedup_min": KERNEL_SPEEDUP_MIN,
            "profiling_off_budget_pct": 100 * PROFILING_OFF_BUDGET,
            "campaign_speedup_min": CAMPAIGN_SPEEDUP_MIN,
            "campaign_speedup_min_small": CAMPAIGN_SPEEDUP_MIN_SMALL,
            "campaign_floor_applied": campaign_floor,
            "campaign_floor_enforced": campaign_floor is not None,
            "regression_fraction": REGRESSION_FRACTION,
        },
    }
    RESULT_FILE.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\n{json.dumps(payload, indent=2)}")

    assert kernel_speedup >= KERNEL_SPEEDUP_MIN, (
        f"kernel speedup {kernel_speedup:.2f}x below the "
        f"{KERNEL_SPEEDUP_MIN}x floor"
    )
    assert off_overhead < PROFILING_OFF_BUDGET, (
        f"profiling-off cost {100 * off_overhead:.2f}% of hierarchy replay "
        f"(budget {100 * PROFILING_OFF_BUDGET:.0f}%)"
    )
    if baseline_speedup is not None:
        floor = REGRESSION_FRACTION * baseline_speedup
        assert kernel_speedup >= floor, (
            f"kernel speedup regressed: {kernel_speedup:.2f}x vs committed "
            f"{baseline_speedup:.2f}x (floor {floor:.2f}x)"
        )
    if campaign_floor is not None:
        assert campaign_speedup >= campaign_floor, (
            f"--jobs {CAMPAIGN_JOBS} campaign speedup "
            f"{campaign_speedup:.2f}x below the {campaign_floor}x "
            f"floor on a {cpu_count}-CPU machine"
        )
