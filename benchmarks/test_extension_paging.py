"""Extension: page placement in front of the physically-indexed L2."""

from repro.exp import extension_paging


def test_extension_paging_report(report, benchmark):
    result = benchmark.pedantic(
        extension_paging.run, kwargs={"quick": False}, rounds=1, iterations=1
    )
    report(result)
