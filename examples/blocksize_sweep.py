"""Figure 4 in miniature: how the block dimension size affects run time.

Sweeps the threaded matrix multiply's block dimension from C/16 to 4C
(C = the scaled L2 size) and prints an ASCII rendering of the paper's
Figure 4 curve: flat while blocks fit the cache, degrading sharply
beyond it.

Run:  python examples/blocksize_sweep.py
"""

from dataclasses import replace

from repro import Simulator, r8000
from repro.apps.matmul import MatmulConfig, threaded

RELATIVE_SIZES = [1 / 16, 1 / 8, 1 / 4, 1 / 2, 1, 2, 4]
LABELS = ["C/16", "C/8", "C/4", "C/2", "C", "2C", "4C"]


def main() -> None:
    machine = r8000(64)
    simulator = Simulator(machine)
    base = MatmulConfig(n=128)
    cache = machine.l2.size

    times = []
    for relative in RELATIVE_SIZES:
        config = replace(base, block_size=max(64, int(cache * relative)))
        result = simulator.run(threaded(config))
        times.append(result.modeled_seconds)

    top = max(times)
    print(f"threaded matmul (n={base.n}) on {machine.name}, "
          f"C = {cache // 1024} KB\n")
    print(f"{'block':>6s}  {'time(s)':>8s}")
    for label, t in zip(LABELS, times):
        bar = "#" * int(40 * t / top)
        print(f"{label:>6s}  {t:8.3f}  {bar}")

    best = min(times[:4])
    print(f"\nwithin the cache (<= C/2) the time varies "
          f"{max(times[1:4]) / min(times[1:4]):.2f}x;")
    print(f"at 4C it is {times[-1] / best:.2f}x the best — the paper's "
          f"'significant performance degradation when the block size is "
          f"greater than the L2 cache size'.")


if __name__ == "__main__":
    main()
