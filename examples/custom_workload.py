"""Threading your own loop: a weighted-segment kernel, step by step.

This walks through what a downstream user does to apply locality
scheduling to a new program, using the full public API:

1. allocate the data in a simulated address space,
2. break the loop into run-to-completion threads,
3. pass the addresses of each thread's main operands as hints
   (here: the y and x segments a block touches),
4. pick a block dimension via ``th_init`` semantics (the
   ``block_size`` argument) suited to the operand size,
5. compare against the unthreaded order under the cache simulator.

The workload is y_seg += w * x_seg over scattered segment pairs that
arrive in (deliberately) scrambled order — a stand-in for any program
whose natural iteration order has poor locality.  x and y are twice the
L2 cache together, so the scrambled order thrashes while the scheduled
order keeps each region resident.

Run:  python examples/custom_workload.py
"""

import numpy as np

from repro import Simulator, r8000

BLOCK = 64          # segment length per block (doubles)
GRID = 64           # 64 x 64 block positions; x and y are 32 KB each
BLOCKS = 3000       # ~73% of positions occupied
SEED = 42


def build_blocks():
    rng = np.random.default_rng(SEED)
    chosen = rng.choice(GRID * GRID, size=BLOCKS, replace=False)
    return [(int(p) // GRID, int(p) % GRID) for p in chosen]


def make_program(positions, use_threads):
    def program(ctx):
        n = GRID * BLOCK
        hx = ctx.allocate_array("x", (n,))
        hy = ctx.allocate_array("y", (n,))
        rng = np.random.default_rng(SEED)
        x = rng.standard_normal(n)
        y = np.zeros(n)
        weights = rng.standard_normal(len(positions))
        recorder = ctx.recorder

        # The weight travels WITH the thread (arg2): run-to-completion
        # threads carry their scalar operands in the thread record, so
        # scheduling cannot scatter a side lookup table.
        def multiply(position, weight):
            bi, bj = position
            recorder.record_interleaved(
                [
                    hx.vector(bj * BLOCK, BLOCK),
                    hy.vector(bi * BLOCK, BLOCK),
                    hy.vector(bi * BLOCK, BLOCK),
                ],
                writes=BLOCK,
            )
            recorder.count_instructions(8 * BLOCK)
            y[bi * BLOCK : (bi + 1) * BLOCK] += (
                weight * x[bj * BLOCK : (bj + 1) * BLOCK]
            )

        if use_threads:
            # Operands are 256-byte segments scattered over two 32 KB
            # vectors: a 4 KB block dimension groups ~16 segments of y
            # with ~16 of x per bin (8 KB resident per bin).
            package = ctx.make_thread_package(block_size=4096)
            for k, (bi, bj) in enumerate(positions):
                package.th_fork(
                    multiply,
                    (bi, bj),
                    weights[k],
                    hy.addr(bi * BLOCK),
                    hx.addr(bj * BLOCK),
                )
            package.th_run(0)
        else:
            for k, position in enumerate(positions):
                multiply(position, weights[k])
        return y

    program.__name__ = "spmv_threaded" if use_threads else "spmv_sequential"
    return program


def main() -> None:
    positions = build_blocks()
    machine = r8000(64)
    simulator = Simulator(machine)
    print(f"{len(positions)} weighted segment pairs over a {GRID}x{GRID} grid, "
          f"scrambled arrival order")
    print(f"x + y = {2 * GRID * BLOCK * 8 // 1024} KB against a "
          f"{machine.l2.size // 1024} KB L2\n")

    sequential = simulator.run(make_program(positions, use_threads=False))
    threaded = simulator.run(make_program(positions, use_threads=True))

    for result in (sequential, threaded):
        print(f"{result.program:18s} modeled {result.modeled_seconds:8.5f}s  "
              f"L2 misses {result.l2_misses:>7,} "
              f"(capacity {result.l2_capacity:,})")

    assert np.allclose(sequential.payload, threaded.payload)
    print(f"\nresults identical; threading cut L2 misses "
          f"{sequential.l2_misses / threaded.l2_misses:.2f}x by grouping "
          f"blocks that share x/y regions.")
    if threaded.sched:
        print(f"scheduling: {threaded.sched.describe()}")


if __name__ == "__main__":
    main()
