"""Locality scheduling for an irregular program: Barnes-Hut N-body.

This is the paper's motivating case (Section 4.4): positions change every
step, the tree is rebuilt every iteration, and "since no memory reference
information [is] available at compile time, automatic tiling is not
feasible".  The runtime scheduler needs only three numbers per thread —
the body's x/y/z position scaled onto the scheduling plane — to recover
the locality a compiler cannot see.

Run:  python examples/nbody_locality.py  [bodies]
"""

import sys

from repro import Simulator, r8000
from repro.apps.nbody import NbodyConfig, VERSIONS


def main() -> None:
    bodies = int(sys.argv[1]) if len(sys.argv) > 1 else 2000
    machine = r8000(16, 16)  # N-body state is O(N): scale L1 and L2 alike
    config = NbodyConfig(bodies=bodies, iterations=2)
    simulator = Simulator(machine)

    print(f"machine: {machine.name} (L2 {machine.l2.size // 1024} KB)")
    print(f"problem: {bodies:,} bodies, {config.iterations} iterations, "
          f"theta = {config.theta}\n")

    results = {}
    for name, factory in VERSIONS.items():
        results[name] = simulator.run(factory(config))
        r = results[name]
        print(f"{name:12s} modeled {r.modeled_seconds:6.3f}s   "
              f"L2 misses {r.l2_misses:>9,} "
              f"(capacity {r.l2_capacity:,}, conflict {r.l2_conflict:,})")

    unthreaded, threaded = results["unthreaded"], results["threaded"]
    print(f"\nL2 capacity misses cut "
          f"{unthreaded.l2_capacity / threaded.l2_capacity:.1f}x "
          f"(paper: 2.3x) — bodies near each other in space traverse "
          f"nearly the same tree cells.")
    print(f"trajectories identical: "
          f"{(unthreaded.payload['pos'] == threaded.payload['pos']).all()}")
    if threaded.sched:
        print(f"scheduling: {threaded.sched.describe()} "
              f"(paper: 64,000 threads in 46 bins, much less uniform "
              f"than the dense kernels)")


if __name__ == "__main__":
    main()
