"""Beyond the paper: locality scheduling on a multiprocessor.

Section 7 of the paper predicts the extension "in a straightforward
manner to improve performance on symmetric multiprocessors".  The
straightforward manner: the bin is already the unit of locality, so make
it the unit of parallel work — hand whole bins to processors and each
private L2 sees the same clustered stream the uniprocessor saw.

Run:  python examples/smp_matmul.py
"""

from repro import Simulator, r8000
from repro.apps.matmul import MatmulConfig, threaded
from repro.smp import SmpMachine, SmpSimulator

CONFIG = MatmulConfig(n=128)


def main() -> None:
    base = r8000(64)
    serial = Simulator(base).run(threaded(CONFIG))
    print(f"serial threaded matmul: {serial.modeled_seconds:.3f}s, "
          f"{serial.l2_misses:,} L2 misses\n")

    print(f"{'P':>2s}  {'policy':<12s} {'makespan':>9s} {'speedup':>8s} "
          f"{'L2 total':>9s} {'imbalance':>9s}")
    for processors in (2, 4, 8):
        simulator = SmpSimulator(SmpMachine(base, processors))
        for policy in ("chunked", "lpt"):
            result = simulator.run(threaded(CONFIG), assignment=policy)
            print(f"{processors:>2d}  {policy:<12s} "
                  f"{result.makespan:9.3f} "
                  f"{result.speedup_over(serial.modeled_seconds):7.2f}x "
                  f"{result.total_l2_misses:>9,} "
                  f"{result.load_imbalance:9.2f}")

    print("\nTotal L2 misses barely move as P grows: distributing whole")
    print("bins preserves the locality the scheduler created.  Speedup")
    print("saturates on the serial fork section and the serial transpose")
    print("(both run on processor 0) — Amdahl, not lost locality.")


if __name__ == "__main__":
    main()
