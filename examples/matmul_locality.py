"""The paper's headline experiment: threading an untiled matrix multiply.

Runs three versions of C = A x B on the scaled R8000 model — the naive
interchanged nest, the compiler-tiled nest, and the fine-grained-threads
version — through the trace-driven cache simulator, and prints the
modeled times and L2 miss classification (the reproduction of Tables 2
and 3 at a glance).

Run:  python examples/matmul_locality.py  [n]
"""

import sys

from repro import Simulator, r8000
from repro.apps.matmul import MatmulConfig, VERSIONS


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 128
    machine = r8000(64)
    config = MatmulConfig(n=n)
    simulator = Simulator(machine)

    print(f"machine: {machine.name} (L2 {machine.l2.size // 1024} KB, "
          f"L1D {machine.l1d.size // 1024} KB)")
    print(f"problem: {n} x {n} doubles "
          f"({config.matrix_bytes / machine.l2.size:.1f}x the L2 per matrix)\n")

    header = (
        f"{'version':22s} {'modeled(s)':>10s} {'L2 misses':>10s} "
        f"{'capacity':>9s} {'conflict':>9s}"
    )
    print(header)
    print("-" * len(header))
    rows = {}
    for name in ("interchanged", "tiled_interchanged", "threaded"):
        result = simulator.run(VERSIONS[name](config))
        rows[name] = result
        print(
            f"{name:22s} {result.modeled_seconds:10.3f} "
            f"{result.l2_misses:>10,} {result.l2_capacity:>9,} "
            f"{result.l2_conflict:>9,}"
        )

    threaded = rows["threaded"]
    untiled = rows["interchanged"]
    print(f"\nthreaded speedup over untiled: "
          f"{untiled.modeled_seconds / threaded.modeled_seconds:.2f}x "
          f"(paper, full scale: 5.07x on the R8000)")
    print(f"L2 misses removed by threading: "
          f"{untiled.l2_misses / threaded.l2_misses:.1f}x "
          f"(paper: 36x)")
    if threaded.sched:
        print(f"thread scheduling: {threaded.sched.describe()} "
              f"(paper: 1,048,576 threads in 81 bins)")


if __name__ == "__main__":
    main()
