"""Quickstart: the thread package and the Section 2.4 worked example.

The paper's interface is three calls:

    th_init(block_size, hash_size)   # configure the scheduling plane
    th_fork(f, arg1, arg2, h1, h2, h3)  # schedule f(arg1, arg2)
    th_run(keep)                     # run everything, bin by bin

This script reproduces the 4x4 matrix multiply of Section 2.4 / Figure 2:
16 dot-product threads, hinted with the addresses of the two vectors each
one reads, land in 4 bins whose data fits a 4-vector cache.

Run:  python examples/quickstart.py
"""

from repro import ThreadPackage

VECTOR = 1024                  # one vector is 1 KB
CACHE = 4 * VECTOR             # the cache holds four vectors
A_BASE = 0x10000               # a1..a4 live here
B_BASE = A_BASE + 4 * VECTOR   # b1..b4 follow


def main() -> None:
    # Block dimension = half the cache: bins then cover 2 a-vectors +
    # 2 b-vectors = exactly the cache (the paper's default).
    package = ThreadPackage(l2_size=CACHE)
    print(f"block dimension size: {package.scheduler.block_size} bytes\n")

    execution_order = []

    def dot_product(i: int, j: int) -> None:
        execution_order.append((i, j))

    # Fork t1..t16 in the paper's order: i outer, j inner.
    for i in range(1, 5):
        for j in range(1, 5):
            package.th_fork(
                dot_product,
                i,
                j,
                A_BASE + (i - 1) * VECTOR,  # hint 1: vector a_i
                B_BASE + (j - 1) * VECTOR,  # hint 2: vector b_j
            )

    stats = package.th_run(0)
    print(f"scheduled: {stats.describe()}\n")

    print("execution order (compare with the paper's bin listing):")
    for start in range(0, 16, 4):
        group = execution_order[start : start + 4]
        vectors = sorted(
            {f"a{i}" for i, _ in group} | {f"b{j}" for _, j in group}
        )
        print(f"  bin {start // 4 + 1}: "
              + ", ".join(f"({i},{j})" for i, j in group)
              + f"   touches {vectors}")

    print("\nEach bin touches exactly 4 vectors = the whole cache:")
    print("running a bin to completion never causes a capacity miss.")


if __name__ == "__main__":
    main()
