"""Three ways to thread a dependent loop nest (SOR), measured.

The paper's threaded SOR accepts *chaotic relaxation*: threads reorder
Gauss-Seidel updates, which "works fine because the goal is to reach
convergence" — but computes a different answer than the sequential
nest.  The two scheduler extensions in this reproduction remove that
compromise in different ways:

1. ``threaded``          — the paper's version (fast, approximate);
2. ``threaded_exact``    — run-to-completion threads with declared
                           dependences and skew-coordinate hints;
3. ``threaded_blocking`` — one long-lived generator thread per column,
                           blocking on neighbour events.

Run:  python examples/exact_sor.py
"""

import numpy as np

from repro import Simulator, r8000
from repro.apps.sor import SorConfig, VERSIONS
from repro.apps.sor.programs import threaded_blocking, threaded_exact

CONFIG = SorConfig(n=251, iterations=30)


def main() -> None:
    simulator = Simulator(r8000(64))
    untiled = simulator.run(VERSIONS["untiled"](CONFIG))
    oracle = untiled.payload["A"]
    print(f"sequential nest:   {untiled.l2_misses:>9,} L2 misses "
          f"(the baseline and the numeric oracle)\n")

    runs = [
        ("threaded (paper)", simulator.run(VERSIONS["threaded"](CONFIG))),
        ("threaded_exact", simulator.run(threaded_exact(CONFIG))),
        ("threaded_blocking", simulator.run(threaded_blocking(CONFIG))),
    ]
    for name, result in runs:
        error = np.abs(result.payload["A"] - oracle).max()
        extras = []
        if "activations" in result.payload:
            extras.append(f"{result.payload['activations']} bin activations")
        if "context_switches" in result.payload:
            extras.append(
                f"{result.payload['context_switches']:,} context switches"
            )
        print(f"{name:18s} {result.l2_misses:>9,} L2 misses   "
              f"max|err| {error:.2e}   {'; '.join(extras)}")

    print(
        "\nthreaded_exact matches the sequential answer bit for bit while"
        "\nkeeping tiled-class locality: declaring the dependences lets the"
        "\nscheduler run a legal order, and hinting the skewed coordinate"
        "\n(column + sweep) aligns the bins with the dependence wavefront."
        "\nThe blocking version is also exact but pays context switches and"
        "\nloses locality: a thread pinned to its column for all sweeps"
        "\ncannot follow the wavefront."
    )


if __name__ == "__main__":
    main()
